"""Calibrated machine profiles for the paper's two evaluation systems.

The constants below are calibrated so the *reported endpoints* of the
paper's figures come out right (see DESIGN.md §5); every mechanism — the
directory-lock serialization, per-file token caps, OST striping, block-lock
false sharing, client caching — is modelled structurally, so the shapes in
between follow from the model rather than from curve fitting.

All bandwidths are MB/s (decimal, 1e6 bytes), all times are seconds, all
sizes are bytes unless suffixed otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.fs.cache import NO_CACHE, ClientCacheModel
from repro.fs.locks import LockContentionModel
from repro.fs.metadata import MetadataCosts
from repro.fs.striping import StripingPolicy

MiB = 1 << 20
GiB = 1 << 30
MB = 10**6
GB = 10**9


@dataclass(frozen=True)
class SystemProfile:
    """Everything the workload generators need to know about one machine."""

    name: str
    fs_type: str  # "gpfs" | "lustre"
    total_cores: int
    cores_per_node: int
    fs_block_size: int

    # Server-side data path.
    peak_write_bw: float
    peak_read_bw: float
    nominal_peak_bw: float  # the marketing number drawn as "peak" in figures
    n_targets: int
    target_write_bw: float
    target_read_bw: float

    # Per-shared-file limits (GPFS token-manager / metanode path).  For
    # Lustre these are derived from striping instead; see per_file_bw().
    per_file_write_bw: float | None
    per_file_read_bw: float | None

    # Backplane bandwidth consumed per file by token/metadata traffic.
    shared_file_overhead_bw: float  # for shared (multi-writer) files
    tasklocal_file_overhead_bw: float  # for one-writer task-local files

    # Client-side path.
    client_bw_per_task: float
    ionode_ratio: int | None  # compute tasks per I/O node; None = direct-attach
    ionode_bw: float

    # Metadata path.
    metadata_costs: MetadataCosts
    shared_open_time: float  # serialized per-client grant on one shared file
    collective_latency: float  # per-hop latency of gather/bcast trees

    # Sub-models.
    lock_model: LockContentionModel = field(default=LockContentionModel(0.0, 0.0))
    cache_model: ClientCacheModel = field(default=NO_CACHE)
    default_striping: StripingPolicy = field(default=StripingPolicy(1, MiB))
    optimized_striping: StripingPolicy | None = None

    # -- derived quantities ------------------------------------------------

    def n_nodes(self, ntasks: int) -> int:
        """Compute nodes hosting ``ntasks`` (1 task per core)."""
        return max(1, math.ceil(ntasks / self.cores_per_node))

    def aggregate_client_bw(self, ntasks: int) -> float:
        """Bandwidth the compute side can push for ``ntasks`` writers."""
        bw = ntasks * self.client_bw_per_task
        if self.ionode_ratio is not None:
            n_ionodes = max(1, math.ceil(ntasks / self.ionode_ratio))
            bw = min(bw, n_ionodes * self.ionode_bw)
        return bw

    def collective_time(self, ntasks: int) -> float:
        """Gather-then-broadcast over a binomial tree of ``ntasks``."""
        if ntasks <= 1:
            return 0.0
        hops = math.ceil(math.log2(ntasks))
        return 2.0 * hops * self.collective_latency

    def per_file_bw(self, op: str, striping: StripingPolicy | None = None) -> float:
        """Bandwidth cap of a single shared physical file.

        GPFS: fixed token-manager/metanode limit.  Lustre: stripe_count
        targets at stripe-depth efficiency.
        """
        if self.fs_type == "gpfs":
            cap = self.per_file_write_bw if op == "write" else self.per_file_read_bw
            assert cap is not None
            return cap
        pol = striping or self.default_striping
        per_target = self.target_write_bw if op == "write" else self.target_read_bw
        return min(pol.stripe_count, self.n_targets) * per_target * pol.depth_efficiency()

    def peak_bw(self, op: str) -> float:
        """Backplane capacity for ``op`` in {'write', 'read'}."""
        if op == "write":
            return self.peak_write_bw
        if op == "read":
            return self.peak_read_bw
        raise ValueError(f"op must be 'read' or 'write', got {op!r}")

    def backplane_after_overheads(
        self, op: str, n_shared_files: int = 0, n_tasklocal_files: int = 0
    ) -> float:
        """Backplane bandwidth left after per-file token/metadata traffic."""
        bw = self.peak_bw(op)
        bw -= self.shared_file_overhead_bw * n_shared_files
        bw -= self.tasklocal_file_overhead_bw * n_tasklocal_files
        return max(bw, 1.0)


def jugene() -> SystemProfile:
    """IBM Blue Gene/P at JSC: 65,536 cores, GPFS 3.2.1, ~6 GB/s scratch.

    Calibration targets (paper): 64K parallel creates ≈ 6 min; opening 64K
    existing files ≈ 1 min; SION multifile creation < 3 s; single shared
    file ≈ 2.4 GB/s; saturation ≈ 6 GB/s between 8 and 32 files; Table 1
    alignment penalties 2.53x (write) / 1.78x (read).
    """
    return SystemProfile(
        name="Jugene",
        fs_type="gpfs",
        total_cores=65536,
        cores_per_node=4,
        fs_block_size=2 * MiB,
        peak_write_bw=6200.0,
        peak_read_bw=6400.0,
        nominal_peak_bw=6000.0,
        n_targets=32,  # GPFS NSD server count
        target_write_bw=6200.0 / 32,
        target_read_bw=6400.0 / 32,
        per_file_write_bw=2400.0,
        per_file_read_bw=2800.0,
        shared_file_overhead_bw=3.0,
        tasklocal_file_overhead_bw=0.016,
        client_bw_per_task=10.0,
        ionode_ratio=512,
        ionode_bw=750.0,
        metadata_costs=MetadataCosts(
            create=5.4e-3,
            open=0.9e-3,
            stat=1e-4,
            close=2e-5,
            unlink=2e-3,
            mkdir=5.4e-3,
            load_factor=0.0,
            dirsize_factor=1e-8,
        ),
        shared_open_time=4.0e-5,
        collective_latency=1.0e-5,
        lock_model=LockContentionModel(write_coeff=1.55, read_coeff=0.79),
        cache_model=NO_CACHE,
        default_striping=StripingPolicy(1, 2 * MiB),
        optimized_striping=None,
    )


def jaguar() -> SystemProfile:
    """Cray XT4 at ORNL: 31,328 cores, Lustre 1.6.5, 40 GB/s nominal.

    Calibration targets (paper): 12K parallel creates ≈ 5 min; opening 12K
    existing files ≈ 20 s; SION creation < 10 s; default striping (4 OSTs,
    1 MB) rises to ~25-30 GB/s by ~32 files; optimized striping (64 OSTs,
    8 MB) good from 2 files and always superior; reads exceed the 40 GB/s
    peak at large task counts due to client caching; no alignment penalty.
    """
    return SystemProfile(
        name="Jaguar",
        fs_type="lustre",
        total_cores=31328,
        cores_per_node=4,
        fs_block_size=2 * MiB,
        peak_write_bw=26000.0,
        peak_read_bw=30000.0,
        nominal_peak_bw=40000.0,
        n_targets=144,  # 72 OSS nodes x 2 OSTs
        target_write_bw=550.0,
        target_read_bw=600.0,
        per_file_write_bw=None,
        per_file_read_bw=None,
        shared_file_overhead_bw=1.0,
        tasklocal_file_overhead_bw=0.15,
        client_bw_per_task=75.0,
        ionode_ratio=None,
        ionode_bw=math.inf,
        metadata_costs=MetadataCosts(
            create=24e-3,
            open=1.55e-3,
            stat=2e-4,
            close=2e-5,
            unlink=8e-3,
            mkdir=24e-3,
            load_factor=0.5e-6,
            dirsize_factor=0.0,
        ),
        shared_open_time=4.0e-4,
        collective_latency=2.0e-6,
        lock_model=LockContentionModel(write_coeff=0.0, read_coeff=0.0),
        cache_model=ClientCacheModel(
            bytes_per_node=6 * GB, cache_bw_per_node=1000.0, hit_efficiency=0.35
        ),
        default_striping=StripingPolicy(4, 1 * MiB),
        optimized_striping=StripingPolicy(64, 8 * MiB),
    )


#: Registry of the paper's evaluation systems by lowercase name.
SYSTEMS = {"jugene": jugene, "jaguar": jaguar}


def get_system(name: str) -> SystemProfile:
    """Look up a profile by (case-insensitive) name."""
    try:
        return SYSTEMS[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown system {name!r}; available: {sorted(SYSTEMS)}"
        ) from None
