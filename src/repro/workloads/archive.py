"""File-management scenario: tape archival of a run's output (paper §1).

Prices the paper's operational motivation — "copying files to a tape
archive may be significantly slowed down ... different files of the same
directory may end up on different tapes" — for a 32K-task run's output,
comparing one-file-per-task against a SION multifile set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.archive import ArchiveComparison, TapeLibrary, compare_archival

GB = 10**9
TB = 10**12

#: Default scenario: a 32K-task run's 1470 GB trace directory (Table 2's
#: data volume) archived while three other users stream to the library.
NTASKS = 32768
DATA_BYTES = 1470 * GB
NFILES_MULTIFILE = 16
INTERLEAVED_USERS = 4


@dataclass
class ArchiveSweepPoint:
    """One task count of the archival comparison."""

    ntasks: int
    comparison: ArchiveComparison


def run_archive_comparison(
    library: TapeLibrary | None = None,
    ntasks: int = NTASKS,
    data_bytes: float = DATA_BYTES,
    nfiles: int = NFILES_MULTIFILE,
    users: int = INTERLEAVED_USERS,
) -> ArchiveComparison:
    """The headline comparison at one scale."""
    lib = library if library is not None else TapeLibrary()
    return compare_archival(lib, ntasks, data_bytes, nfiles, users)


def sweep_task_counts(
    task_counts: list[int],
    bytes_per_task: float = 45 * 10**6,
    library: TapeLibrary | None = None,
    nfiles: int = NFILES_MULTIFILE,
    users: int = INTERLEAVED_USERS,
) -> list[ArchiveSweepPoint]:
    """Archival cost growth as the job scales (fixed bytes per task)."""
    lib = library if library is not None else TapeLibrary()
    return [
        ArchiveSweepPoint(
            ntasks=n,
            comparison=compare_archival(
                lib, n, n * bytes_per_task, min(nfiles, n), users
            ),
        )
        for n in task_counts
    ]
