"""Fig. 5 — SION vs. task-local bandwidth across task counts.

Both machines, 32 underlying physical files for SION, data sized like the
paper's runs (1 TB on Jugene, 2 TB on Jaguar).  At small task counts the
client side (per-task links, I/O-node fan-in) limits both approaches; at
scale the file system saturates.  SION is marginally ahead because
task-local files tax the backplane with per-file metadata traffic, and on
Jaguar the read curves exceed the nominal peak through client caching —
the paper's explicitly noted artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.systems import SystemProfile
from repro.workloads.common import parallel_io

TB = 10**12

#: Paper sweep points (Fig. 5a and 5b).
JUGENE_TASK_COUNTS = [1024, 2048, 4096, 8192, 16384, 32768, 65536]
JAGUAR_TASK_COUNTS = [128, 256, 512, 1024, 2048, 4096, 8192, 12288]

SION_NFILES = 32


@dataclass
class TaskBWPoint:
    """One x-position of Fig. 5: four curves."""

    ntasks: int
    sion_write: float
    sion_read: float
    tasklocal_write: float
    tasklocal_read: float


def sweep_task_counts(
    profile: SystemProfile,
    task_counts: list[int],
    total_bytes: float,
    nfiles: int = SION_NFILES,
    use_cache: bool = False,
) -> list[TaskBWPoint]:
    """The four bandwidth curves over a task-count sweep."""
    out = []
    for n in task_counts:
        nf = min(nfiles, n)
        sw = parallel_io(profile, n, total_bytes, "write", nfiles=nf)
        sr = parallel_io(profile, n, total_bytes, "read", nfiles=nf, use_cache=use_cache)
        tw = parallel_io(profile, n, total_bytes, "write", tasklocal=True)
        tr = parallel_io(profile, n, total_bytes, "read", tasklocal=True, use_cache=use_cache)
        out.append(
            TaskBWPoint(
                ntasks=n,
                sion_write=sw.bandwidth_mb_s,
                sion_read=sr.effective_bandwidth,
                tasklocal_write=tw.bandwidth_mb_s,
                tasklocal_read=tr.effective_bandwidth,
            )
        )
    return out


def run_fig5a(profile: SystemProfile) -> list[TaskBWPoint]:
    """Jugene: 1 TB multifile, no caching (paper sized data to defeat it)."""
    return sweep_task_counts(profile, JUGENE_TASK_COUNTS, 1 * TB)


def run_fig5b(profile: SystemProfile) -> list[TaskBWPoint]:
    """Jaguar: 2 TB, client caching enabled for reads."""
    return sweep_task_counts(profile, JAGUAR_TASK_COUNTS, 2 * TB, use_cache=True)
