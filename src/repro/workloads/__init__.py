"""Experiment scenario generators for every table and figure of the paper.

Each module reproduces one evaluation artifact by driving the simulated
file system (:mod:`repro.fs`) with the same operation pattern the paper's
measurements generated:

========================  =============================================
:mod:`~repro.workloads.filecreate`   Fig. 3a/3b — parallel create/open of task-local files vs. SION multifile creation
:mod:`~repro.workloads.bandwidth`    Fig. 4a/4b — bandwidth vs. number of physical files (and striping)
:mod:`~repro.workloads.alignment`    Table 1    — FS-block alignment vs. false sharing
:mod:`~repro.workloads.taskbw`       Fig. 5a/5b — SION vs. task-local bandwidth over task counts
:mod:`~repro.workloads.mp2c_io`      Fig. 6     — MP2C restart I/O: single-file-sequential vs. SION
:mod:`~repro.workloads.scalasca_io`  Table 2    — Scalasca measurement activation and write bandwidth
:mod:`~repro.workloads.repartition`  §1/§3 scenario — checkpoint with n tasks, analyze with m readers
========================  =============================================
"""

from repro.workloads.common import IOResult, parallel_io

__all__ = ["IOResult", "parallel_io"]
