"""Fig. 6 — MP2C restart-file I/O: single-file-sequential vs. SION.

1000 cores of Jugene, 52 bytes per particle, one underlying physical file
(as in the paper's measurement).  The baseline is MP2C's original path: a
designated I/O task alternates gathering a bounded slab from the others
with writing it out — serialized, and throttled by what one slow compute
core can marshal.  SION writes all task chunks concurrently, but pays a
floor of one file-system block per task (the paper's explanation for why
its advantage "materializes only for larger problem sizes").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.mp2c.particles import RECORD_BYTES
from repro.fs.systems import SystemProfile
from repro.workloads.common import MB, parallel_io
from repro.workloads.filecreate import sion_create_time

#: Paper scenario: one rack of Jugene in SMP mode.
NTASKS = 1000

#: Effective gather throughput into the designated I/O task (MB/s).
#: Calibrated to the measured baseline: a 850 MHz PowerPC core packing
#: and unpacking slabs sustains a few tens of MB/s.
GATHER_BW = 40.0

#: Effective serial write/read throughput of the designated task (MB/s).
SINGLE_STREAM_BW = 40.0

#: Particle counts swept in Fig. 6 (millions).
PARTICLE_SWEEP_M = [1, 3.3, 10, 33, 100, 330, 1000]


@dataclass
class MP2CPoint:
    """One x-position of Fig. 6: four curves (times in seconds)."""

    particles_m: float
    data_mb: float
    sion_write_s: float
    sion_read_s: float
    single_write_s: float
    single_read_s: float

    @property
    def write_speedup(self) -> float:
        """Baseline/SION write time."""
        return self.single_write_s / self.sion_write_s

    @property
    def read_speedup(self) -> float:
        """Baseline/SION read time."""
        return self.single_read_s / self.sion_read_s


def single_file_time(data_bytes: float, op: str) -> float:
    """Single-file-sequential restart time.

    Gather (or scatter) and serial file I/O alternate without overlap —
    "serialized I/O in combination with alternating gather and write
    operations" (paper §5.1) — so the costs add.
    """
    mb = data_bytes / MB
    return mb / GATHER_BW + mb / SINGLE_STREAM_BW


def sion_restart_time(
    profile: SystemProfile,
    ntasks: int,
    data_bytes: float,
    op: str,
    nfiles: int = 1,
) -> float:
    """SION restart time: collective open/close plus the aligned transfer.

    Every task occupies at least one file-system block, so small restarts
    still move ``ntasks * fsblksize`` bytes — the flat left side of the
    SION curves.
    """
    floor_bytes = ntasks * profile.fs_block_size
    effective = max(data_bytes, float(floor_bytes))
    transfer = parallel_io(profile, ntasks, effective, op, nfiles=nfiles)
    if op == "write":
        meta = sion_create_time(profile, ntasks, nfiles)
    else:
        meta = (
            nfiles * profile.metadata_costs.open
            + ntasks * profile.shared_open_time
            + profile.collective_time(ntasks)
        )
    return meta + transfer.time_s


def run_fig6(
    profile: SystemProfile,
    particle_sweep_m: list[float] | None = None,
    ntasks: int = NTASKS,
) -> list[MP2CPoint]:
    """Reproduce Fig. 6's four curves on ``profile`` (the paper: Jugene)."""
    sweep = particle_sweep_m if particle_sweep_m is not None else PARTICLE_SWEEP_M
    out = []
    for pm in sweep:
        data = pm * 1e6 * RECORD_BYTES
        out.append(
            MP2CPoint(
                particles_m=pm,
                data_mb=data / MB,
                sion_write_s=sion_restart_time(profile, ntasks, data, "write"),
                sion_read_s=sion_restart_time(profile, ntasks, data, "read"),
                single_write_s=single_file_time(data, "write"),
                single_read_s=single_file_time(data, "read"),
            )
        )
    return out


def crossover_particles_m(points: list[MP2CPoint]) -> float | None:
    """Smallest swept particle count where SION's write beats the baseline."""
    for p in points:
        if p.sion_write_s < p.single_write_s:
            return p.particles_m
    return None
