"""Table 1 — file-system block alignment vs. false sharing.

32K tasks write/read 256 GB through 16 physical files on Jugene.  With
SIONlib configured at the true 2 MB GPFS block size, chunks are perfectly
aligned; configured at 16 KB, up to 128 tasks' chunks share each 2 MB
block and every write forces a token revocation.  The paper measured a
2.53x write and 1.78x read penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.systems import SystemProfile
from repro.workloads.common import parallel_io

GB = 10**9

#: Paper scenario parameters (Table 1).
NTASKS = 32768
NFILES = 16
DATA_BYTES = 256 * GB
ALIGNED_BLKSIZE = 2 * (1 << 20)
UNALIGNED_BLKSIZE = 16 * 1024


@dataclass
class AlignmentRow:
    """One row of Table 1."""

    ntasks: int
    data_bytes: int
    blksize: int
    write_mb_s: float
    read_mb_s: float


@dataclass
class AlignmentResult:
    """Both rows plus the penalty factors the paper reports."""

    aligned: AlignmentRow
    unaligned: AlignmentRow

    @property
    def write_factor(self) -> float:
        """Aligned/unaligned write bandwidth (paper: 2.53x)."""
        return self.aligned.write_mb_s / self.unaligned.write_mb_s

    @property
    def read_factor(self) -> float:
        """Aligned/unaligned read bandwidth (paper: 1.78x)."""
        return self.aligned.read_mb_s / self.unaligned.read_mb_s


def run_table1(
    profile: SystemProfile,
    ntasks: int = NTASKS,
    nfiles: int = NFILES,
    data_bytes: int = DATA_BYTES,
    aligned: int = ALIGNED_BLKSIZE,
    unaligned: int = UNALIGNED_BLKSIZE,
) -> AlignmentResult:
    """Reproduce Table 1 on ``profile`` (the paper used Jugene)."""
    rows = []
    for blk in (aligned, unaligned):
        w = parallel_io(
            profile, ntasks, data_bytes, "write", nfiles=nfiles, chunk_align_bytes=blk
        )
        r = parallel_io(
            profile, ntasks, data_bytes, "read", nfiles=nfiles, chunk_align_bytes=blk
        )
        rows.append(
            AlignmentRow(
                ntasks=ntasks,
                data_bytes=data_bytes,
                blksize=blk,
                write_mb_s=w.bandwidth_mb_s,
                read_mb_s=r.bandwidth_mb_s,
            )
        )
    return AlignmentResult(aligned=rows[0], unaligned=rows[1])


def alignment_sweep(
    profile: SystemProfile,
    blk_sizes: list[int],
    ntasks: int = NTASKS,
    nfiles: int = NFILES,
    data_bytes: int = DATA_BYTES,
) -> list[AlignmentRow]:
    """Ablation: penalty as the configured block size shrinks."""
    out = []
    for blk in blk_sizes:
        w = parallel_io(
            profile, ntasks, data_bytes, "write", nfiles=nfiles, chunk_align_bytes=blk
        )
        r = parallel_io(
            profile, ntasks, data_bytes, "read", nfiles=nfiles, chunk_align_bytes=blk
        )
        out.append(
            AlignmentRow(
                ntasks=ntasks,
                data_bytes=data_bytes,
                blksize=blk,
                write_mb_s=w.bandwidth_mb_s,
                read_mb_s=r.bandwidth_mb_s,
            )
        )
    return out
