"""Table 2 — Scalasca measurement activation time and trace write bandwidth.

32K tasks on Jugene trace an SMG2000 run producing 1470 GB of event data,
written through 16 physical files.  *Activation* is trace-file creation
plus tracing-library initialization; the paper measured 369.1 s with
task-local files against 28.1 s with SIONlib (13.1x), with "the pure file
creation consuming roughly 1 s" in the SION case.

Trace writing itself is throttled by each task's zlib-compression and
buffer-management throughput, not by the file system — which is why the
measured bandwidths (≈2.15 vs ≈2.19 GB/s) sit far under the 6 GB/s peak
and differ only by the metadata interference the 32K open files add.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.systems import SystemProfile
from repro.workloads.common import parallel_io
from repro.workloads.filecreate import sion_create_time, tasklocal_metadata_time

GB = 10**9

#: Paper scenario (Table 2).
NTASKS = 32768
NFILES = 16
TRACE_BYTES = 1470 * GB

#: Tracing-library initialization independent of the I/O method
#: (buffer allocation, definitions, clock sync) — seconds.
TRACER_INIT_TIME = 25.0

#: Per-task sustained trace-write throughput (MB/s): zlib compression and
#: buffer drainage on one 850 MHz PowerPC core, calibrated to the paper's
#: measured aggregate (2153-2194 MB/s over 32K tasks).
COMPRESS_WRITE_RATE = 0.067

#: Relative efficiency of the task-local write phase: 32K open files keep
#: the metadata subsystem busy, shaving ~2% off the achievable rate.
TASKLOCAL_WRITE_EFFICIENCY = 0.981


@dataclass
class ScalascaRow:
    """One row of Table 2."""

    io_type: str
    ntasks: int
    trace_bytes: float
    activation_s: float
    write_bw_mb_s: float


@dataclass
class ScalascaResult:
    """Both rows plus the headline speedup."""

    tasklocal: ScalascaRow
    sion: ScalascaRow

    @property
    def activation_speedup(self) -> float:
        """Paper: 13.1x."""
        return self.tasklocal.activation_s / self.sion.activation_s


def activation_time(
    profile: SystemProfile, ntasks: int, method: str, nfiles: int = NFILES
) -> float:
    """Measurement-activation time for one method."""
    if method == "tasklocal":
        create = tasklocal_metadata_time(profile, ntasks, "create")
    elif method == "sion":
        create = sion_create_time(profile, ntasks, nfiles)
    else:
        raise ValueError(f"unknown method {method!r}")
    return create + TRACER_INIT_TIME


def trace_write_bandwidth(
    profile: SystemProfile, ntasks: int, trace_bytes: float, method: str, nfiles: int = NFILES
) -> float:
    """Aggregate trace-write bandwidth for one method (MB/s)."""
    rate = COMPRESS_WRITE_RATE
    if method == "tasklocal":
        rate *= TASKLOCAL_WRITE_EFFICIENCY
    res = parallel_io(
        profile,
        ntasks,
        trace_bytes,
        "write",
        nfiles=nfiles,
        tasklocal=(method == "tasklocal"),
        rate_cap_per_task=rate,
    )
    return res.bandwidth_mb_s


def run_table2(
    profile: SystemProfile,
    ntasks: int = NTASKS,
    trace_bytes: float = TRACE_BYTES,
    nfiles: int = NFILES,
) -> ScalascaResult:
    """Reproduce Table 2 on ``profile`` (the paper used Jugene)."""
    rows = {}
    for method in ("tasklocal", "sion"):
        rows[method] = ScalascaRow(
            io_type="Task-local" if method == "tasklocal" else "SIONlib",
            ntasks=ntasks,
            trace_bytes=trace_bytes,
            activation_s=activation_time(profile, ntasks, method, nfiles),
            write_bw_mb_s=trace_write_bandwidth(
                profile, ntasks, trace_bytes, method, nfiles
            ),
        )
    return ScalascaResult(tasklocal=rows["tasklocal"], sion=rows["sion"])
