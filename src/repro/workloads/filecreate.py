"""Fig. 3 — parallel creation/opening of task-local files vs. SION.

The task-local curves come from a discrete-event simulation of the
metadata service: ``N`` clients each submit one ``create`` (or ``open``)
against the shared directory at t=0 and the makespan is the completion of
the last one.  The SION curve is the collective multifile creation: a
handful of physical-file creates, a gather of chunk sizes, the metablock
write, and the serialized per-client grant on the shared files.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.fs.events import Engine
from repro.fs.metadata import FifoMetadataService, MetadataOp
from repro.fs.systems import SystemProfile

#: Virtual seconds for the master to write one metablock.
_METABLOCK_WRITE_TIME = 0.01

#: Paper sweep points (Fig. 3a and 3b).
JUGENE_TASK_COUNTS = [4096, 8192, 16384, 32768, 65536]
JAGUAR_TASK_COUNTS = [256, 1024, 2048, 4096, 8192, 12288]


@dataclass
class CreateResult:
    """Timing of one file-creation scenario."""

    ntasks: int
    create_files_s: float
    open_existing_s: float
    sion_create_s: float

    @property
    def create_speedup(self) -> float:
        """How much faster SION multifile creation is than N creates."""
        return self.create_files_s / self.sion_create_s


def tasklocal_metadata_time(
    profile: SystemProfile, ntasks: int, kind: str = "create"
) -> float:
    """Makespan of ``ntasks`` simultaneous metadata ops in one directory."""
    if ntasks < 0:
        raise ReproError("ntasks must be non-negative")
    engine = Engine()
    service = FifoMetadataService(engine, profile.metadata_costs, name="dir")
    if kind == "open":
        # Opening *existing* files: the directory already holds them.
        service.dir_entries = ntasks
    done: list[float] = []
    for t in range(ntasks):
        service.submit(
            MetadataOp(kind, f"/scratch/run/task{t:06d}", task=t),
            callback=lambda ts, op: done.append(ts),
        )
    engine.run()
    if len(done) != ntasks:
        raise ReproError("metadata simulation lost operations")
    return max(done, default=0.0)


def sion_create_time(
    profile: SystemProfile, ntasks: int, nfiles: int = 1
) -> float:
    """Collective multifile creation time.

    Components: ``nfiles`` creates through the (serialized) metadata
    service, the chunk-size gather over the task tree, the metablock-1
    writes, and one serialized open grant per client on its shared file.
    """
    if ntasks < 1 or nfiles < 1 or nfiles > ntasks:
        raise ReproError(f"bad scenario: ntasks={ntasks} nfiles={nfiles}")
    engine = Engine()
    service = FifoMetadataService(engine, profile.metadata_costs, name="dir")
    done: list[float] = []
    for f in range(nfiles):
        service.submit(
            MetadataOp("create", f"/scratch/run/data.sion.{f:06d}", task=f),
            callback=lambda ts, op: done.append(ts),
        )
    engine.run()
    create_time = max(done, default=0.0)
    gather_time = profile.collective_time(ntasks)
    grant_time = ntasks * profile.shared_open_time
    return create_time + gather_time + _METABLOCK_WRITE_TIME * nfiles + grant_time


def run_fig3(
    profile: SystemProfile,
    task_counts: list[int],
    sion_nfiles: int = 1,
) -> list[CreateResult]:
    """Produce the three curves of Fig. 3 for one machine."""
    return [
        CreateResult(
            ntasks=n,
            create_files_s=tasklocal_metadata_time(profile, n, "create"),
            open_existing_s=tasklocal_metadata_time(profile, n, "open"),
            sion_create_s=sion_create_time(profile, n, sion_nfiles),
        )
        for n in task_counts
    ]
