"""Weak-scaling complements to Fig. 6 and §5.2.

Fig. 6 fixes 1000 cores and sweeps the problem size.  Production runs grow
both together — weak scaling — and that is where the single-file baseline
truly collapses: its time grows with the *total* data while SION's stays
bounded by the saturating file-system bandwidth.

The second scenario prices the trace-analysis *load* phase (paper §5.2,
Fig. 7): the parallel analyzer opening every task's trace postmortem.
With physical task-local files that is Fig. 3's "open existing" cost; with
a multifile it is one shared-open plus metadata reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.mp2c.particles import RECORD_BYTES
from repro.fs.systems import SystemProfile
from repro.workloads.filecreate import tasklocal_metadata_time
from repro.workloads.mp2c_io import single_file_time, sion_restart_time

#: Particles each task owns in the weak-scaling sweep (fills a domain).
PARTICLES_PER_TASK = 100_000


@dataclass
class WeakScalingPoint:
    """Checkpoint time at one task count, particles/task held fixed."""

    ntasks: int
    data_bytes: float
    sion_write_s: float
    single_write_s: float

    @property
    def speedup(self) -> float:
        return self.single_write_s / self.sion_write_s


def mp2c_weak_scaling(
    profile: SystemProfile,
    task_counts: list[int],
    particles_per_task: int = PARTICLES_PER_TASK,
    nfiles: int = 16,
) -> list[WeakScalingPoint]:
    """Checkpoint cost as the job grows with its machine."""
    out = []
    for n in task_counts:
        data = float(n * particles_per_task * RECORD_BYTES)
        out.append(
            WeakScalingPoint(
                ntasks=n,
                data_bytes=data,
                sion_write_s=sion_restart_time(
                    profile, n, data, "write", nfiles=min(nfiles, n)
                ),
                single_write_s=single_file_time(data, "write"),
            )
        )
    return out


@dataclass
class AnalyzerLoadPoint:
    """Trace-load (open) cost for the parallel analyzer at one scale."""

    ntasks: int
    tasklocal_open_s: float
    sion_open_s: float

    @property
    def speedup(self) -> float:
        return self.tasklocal_open_s / self.sion_open_s


def analyzer_load_times(
    profile: SystemProfile, task_counts: list[int], nfiles: int = 16
) -> list[AnalyzerLoadPoint]:
    """Opening N existing traces (Fig. 3's 'open existing') vs. a multifile.

    The paper: open durations "can accumulate to a substantial overhead,
    if the same collection of task-local files is periodically opened" —
    the trace analyzer does exactly one such pass per analysis.
    """
    out = []
    for n in task_counts:
        tasklocal = tasklocal_metadata_time(profile, n, "open")
        # Multifile: per-client shared-open grants + metadata reads; the
        # same cost structure as creation minus the create ops themselves.
        sion = (
            min(nfiles, n) * profile.metadata_costs.open
            + n * profile.shared_open_time
            + profile.collective_time(n)
        )
        out.append(AnalyzerLoadPoint(ntasks=n, tasklocal_open_s=tasklocal, sion_open_s=sion))
    return out
