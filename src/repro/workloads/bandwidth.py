"""Fig. 4 — bandwidth as a function of the number of physical files.

Jugene (Fig. 4a): 64K tasks write/read 1 TB through 1..128 physical files;
the per-file GPFS token path caps a single file well below the backplane,
so spreading over ~8-32 files saturates the ~6 GB/s scratch file system,
with a mild decline at very large file counts from token traffic.

Jaguar (Fig. 4b): 2K tasks move 1 TB under two striping configurations —
the default (4 OSTs, 1 MB stripes) and an optimized one (64 OSTs, 8 MB) —
showing that striping choice matters as much as file count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.striping import StripingPolicy
from repro.fs.systems import SystemProfile
from repro.workloads.common import parallel_io

TB = 10**12

#: Paper sweep points.
JUGENE_NFILES = [1, 2, 4, 8, 16, 32, 64, 128]
JAGUAR_NFILES = [1, 2, 4, 8, 16, 32, 64]

JUGENE_NTASKS = 65536
JAGUAR_NTASKS = 2048


@dataclass
class NfilesPoint:
    """One x-position of Fig. 4."""

    nfiles: int
    write_mb_s: float
    read_mb_s: float


def sweep_nfiles(
    profile: SystemProfile,
    ntasks: int,
    total_bytes: float,
    nfiles_list: list[int],
    striping: StripingPolicy | None = None,
    seeds: int = 3,
) -> list[NfilesPoint]:
    """Write/read bandwidth over a sweep of physical-file counts.

    On Lustre the OST sets are drawn randomly per file (like the real
    allocator under load), so each point is averaged over ``seeds``
    placements; GPFS placement is deterministic and needs one run.
    """
    n_seeds = seeds if profile.fs_type == "lustre" else 1
    out = []
    for nf in nfiles_list:
        w_bw = r_bw = 0.0
        for s in range(n_seeds):
            w = parallel_io(
                profile, ntasks, total_bytes, "write", nfiles=nf, striping=striping, seed=s
            )
            r = parallel_io(
                profile, ntasks, total_bytes, "read", nfiles=nf, striping=striping, seed=s
            )
            w_bw += w.bandwidth_mb_s
            r_bw += r.bandwidth_mb_s
        out.append(
            NfilesPoint(nfiles=nf, write_mb_s=w_bw / n_seeds, read_mb_s=r_bw / n_seeds)
        )
    return out


def run_fig4a(profile: SystemProfile) -> list[NfilesPoint]:
    """Jugene: 64K tasks, 1 TB, 1-128 physical files."""
    return sweep_nfiles(profile, JUGENE_NTASKS, 1 * TB, JUGENE_NFILES)


@dataclass
class Fig4bResult:
    """Jaguar sweep under both striping configurations."""

    default: list[NfilesPoint]
    optimized: list[NfilesPoint]


def run_fig4b(profile: SystemProfile) -> Fig4bResult:
    """Jaguar: 2K tasks, 1 TB, default vs. optimized striping."""
    default = sweep_nfiles(
        profile, JAGUAR_NTASKS, 1 * TB, JAGUAR_NFILES, striping=profile.default_striping
    )
    assert profile.optimized_striping is not None
    optimized = sweep_nfiles(
        profile,
        JAGUAR_NTASKS,
        1 * TB,
        JAGUAR_NFILES,
        striping=profile.optimized_striping,
    )
    return Fig4bResult(default=default, optimized=optimized)
