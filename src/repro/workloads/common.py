"""Shared machinery for the bandwidth experiments.

:func:`parallel_io` turns a symmetric "N tasks move D bytes through F
files" scenario into a fluid-flow simulation over the machine profile's
resources:

* one *client* resource capping what the compute side can push
  (per-task link x I/O-node fan-in);
* one *backplane* resource for the file servers, reduced by per-file
  token/metadata traffic;
* per-file caps (GPFS token manager) or shared OST resources (Lustre
  striping), depending on the profile's file-system type;
* optional false-sharing inflation (Table 1) and stripe-depth efficiency.

All experiments funnel through this one function, so the figures differ
only in the scenario parameters — exactly how the paper's measurement
campaigns were structured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.fs.events import Engine
from repro.fs.flows import FlowScheduler, Resource
from repro.fs.striping import StripingPolicy
from repro.fs.systems import SystemProfile
from repro.sion.mapping import TaskMapping

MB = 10**6


@dataclass
class IOResult:
    """Outcome of one simulated parallel transfer."""

    op: str
    ntasks: int
    nfiles: int
    total_mb: float
    time_s: float
    bandwidth_mb_s: float
    cached_bandwidth_mb_s: float | None = None

    @property
    def effective_bandwidth(self) -> float:
        """Cache-adjusted bandwidth when applicable, raw otherwise."""
        return (
            self.cached_bandwidth_mb_s
            if self.cached_bandwidth_mb_s is not None
            else self.bandwidth_mb_s
        )


def parallel_io(
    profile: SystemProfile,
    ntasks: int,
    total_bytes: float,
    op: str = "write",
    nfiles: int = 1,
    striping: StripingPolicy | None = None,
    chunk_align_bytes: int | None = None,
    tasklocal: bool = False,
    use_cache: bool = False,
    rate_cap_per_task: float | None = None,
    seed: int = 0,
) -> IOResult:
    """Simulate ``ntasks`` symmetric tasks transferring ``total_bytes``.

    ``tasklocal=True`` models one physical file per task (no shared-file
    caps, per-file presence overhead on the backplane); otherwise the
    tasks share ``nfiles`` SION physical files (blocked mapping).

    ``chunk_align_bytes`` smaller than the true FS block size inflates the
    transfer via the profile's lock-contention model (GPFS false sharing).
    ``use_cache`` post-processes reads through the client-cache model
    (Jaguar's >peak artifact).  ``rate_cap_per_task`` overrides the
    client-link cap (used to model per-task compression throughput).
    """
    if op not in ("write", "read"):
        raise ReproError(f"op must be 'write' or 'read', got {op!r}")
    if ntasks < 1 or total_bytes < 0:
        raise ReproError("need >= 1 task and non-negative bytes")
    if tasklocal:
        nfiles = ntasks
    if nfiles < 1 or nfiles > ntasks:
        raise ReproError(f"nfiles {nfiles} invalid for {ntasks} tasks")

    per_task_mb = (total_bytes / ntasks) / MB

    # False-sharing inflation: serialized lock handoffs stretch the
    # transfer exactly like extra bytes on the wire.
    if chunk_align_bytes is not None and not tasklocal:
        k = profile.lock_model.sharers_per_block(
            chunk_align_bytes, profile.fs_block_size
        )
        penalty = (
            profile.lock_model.write_penalty(k)
            if op == "write"
            else profile.lock_model.read_penalty(k)
        )
        per_task_mb *= penalty

    # Shared resources.
    clients = Resource("clients", profile.aggregate_client_bw(ntasks))
    backplane = Resource(
        "backplane",
        profile.backplane_after_overheads(
            op,
            n_shared_files=0 if tasklocal else nfiles,
            n_tasklocal_files=ntasks if tasklocal else 0,
        ),
    )
    rate_cap = (
        rate_cap_per_task
        if rate_cap_per_task is not None
        else profile.client_bw_per_task
    )

    file_resources = _file_resources(
        profile, nfiles, op, striping, tasklocal, seed
    )

    # Tasks -> files, blocked (the SION default); task-local is identity.
    tmap = TaskMapping.blocked(ntasks, nfiles)

    engine = Engine()
    sched = FlowScheduler(engine)
    flows = []
    with sched.batch():
        for t in range(ntasks):
            fnum = t if tasklocal else tmap.file_of(t)
            resources = (clients, backplane, *file_resources[fnum])
            flows.append(sched.submit(per_task_mb, resources, rate_cap=rate_cap))
    engine.run()
    if sched.active_flows:
        raise ReproError("transfer stalled: a resource has zero capacity")
    time_s = max((f.finish_time for f in flows), default=0.0)
    total_mb = total_bytes / MB
    bw = total_mb / time_s if time_s > 0 else math.inf

    cached_bw: float | None = None
    if use_cache and op == "read":
        cached_bw = profile.cache_model.effective_read_bandwidth(
            bw, total_bytes, profile.n_nodes(ntasks)
        )
    return IOResult(
        op=op,
        ntasks=ntasks,
        nfiles=nfiles,
        total_mb=total_mb,
        time_s=time_s,
        bandwidth_mb_s=bw,
        cached_bandwidth_mb_s=cached_bw,
    )


def _file_resources(
    profile: SystemProfile,
    nfiles: int,
    op: str,
    striping: StripingPolicy | None,
    tasklocal: bool,
    seed: int,
) -> list[tuple]:
    """Per-file weighted resource tuples: GPFS token caps or Lustre OST sets.

    A striped file spreads each flow's bytes evenly over its stripe
    targets, so every OST carries ``1/stripe_count`` of the flow's rate —
    hence the fractional weights.
    """
    if profile.fs_type == "gpfs":
        if tasklocal:
            # Single-writer files: the token manager never arbitrates.
            return [() for _ in range(nfiles)]
        cap = profile.per_file_bw(op)
        return [(Resource(f"file{f}", cap),) for f in range(nfiles)]

    # Lustre: files stripe over OSTs; OSTs are the shared hardware.  The
    # allocator hands out targets round-robin from a moving cursor (plus a
    # seeded initial offset), so placements are collision-free until the
    # target pool wraps — matching Lustre's QOS allocator behaviour.
    pol = striping or profile.default_striping
    per_target = (
        profile.target_write_bw if op == "write" else profile.target_read_bw
    )
    osts = [
        Resource(f"ost{i}", per_target) for i in range(profile.n_targets)
    ]
    start = int(np.random.default_rng(seed).integers(0, profile.n_targets))
    out: list[tuple] = []
    stripe = min(pol.stripe_count, profile.n_targets)
    # Each payload byte spreads over `stripe` targets (1/stripe), and small
    # stripe depths burn extra OST service time on per-RPC overhead
    # (1/depth_efficiency) — overhead that never crosses the server
    # backplane as payload.
    weight = (1.0 / stripe) / pol.depth_efficiency()
    cursor = start
    for _ in range(nfiles):
        chosen = tuple(
            (osts[(cursor + k) % profile.n_targets], weight) for k in range(stripe)
        )
        out.append(chosen)
        cursor = (cursor + stripe) % profile.n_targets
    return out
