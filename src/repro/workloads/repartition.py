"""Re-partitioned restart/analysis workload: write with n, analyze with m.

The paper's operational scenario made concrete: a production job
checkpoints with every one of its ``n`` tasks (the multifile absorbs the
file-count pressure), and a later *analysis* job — a visualization
pipeline, a postmortem debugger, a restart onto a smaller partition —
comes back with ``m`` ranks.  Because the multifile records its own
metadata, the analysis world never has to match the writer world: each
reader takes a contiguous slice of the recorded task streams
(:class:`~repro.sion.mapping.ReadPartition`) and the bytes are identical
to what an ``n``-rank read would have seen.

Two layers, like the rest of :mod:`repro.workloads`:

* :func:`run_restart_analysis` — the *model*: prices the checkpoint
  write (n writers) and the analysis read (m readers) on a machine
  profile through the shared fluid-flow simulation, so the m/n tradeoff
  (fewer readers mean fewer clients pulling, but also less aggregate
  client bandwidth) can be swept without touching a byte.
* :func:`repartition_roundtrip` — the *driver*: executes the same shape
  against the real library over a storage backend (both SPMD engines),
  verifying byte identity inside each reader rank.  The ``repartition``
  benchmark suite wraps this with a counting backend to pin the O(m)
  physical-call claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.backends.base import Backend
from repro.errors import ReproError
from repro.fs.systems import SystemProfile
from repro.sion.mapping import ReadPartition
from repro.workloads.common import IOResult, parallel_io


@dataclass
class RestartAnalysisResult:
    """Modelled cost of one checkpoint/analysis cycle."""

    nwriters: int
    nreaders: int
    nfiles: int
    data_bytes: float
    write: IOResult
    read: IOResult

    @property
    def cycle_time_s(self) -> float:
        """Checkpoint write plus analysis read, end to end."""
        return self.write.time_s + self.read.time_s

    @property
    def read_fanin(self) -> float:
        """Writer streams each analysis rank multiplexes (n/m)."""
        return self.nwriters / self.nreaders


def run_restart_analysis(
    profile: SystemProfile,
    nwriters: int,
    nreaders: int,
    bytes_per_writer: float,
    nfiles: int = 16,
    use_cache: bool = False,
) -> RestartAnalysisResult:
    """Price one write-with-n / analyze-with-m cycle on ``profile``.

    The read moves the *same* total bytes as the write — every recorded
    stream is consumed — but through ``m`` clients instead of ``n``,
    over the same ``nfiles`` physical files.
    """
    if nwriters < 1 or nreaders < 1:
        raise ReproError("need >= 1 writer and >= 1 reader")
    data = float(nwriters) * float(bytes_per_writer)
    # The physical file count is fixed at checkpoint time by the writer
    # world; the analysis job merely consumes it (a tiny reader world
    # spreads over at most nreaders of the files at once, which is the
    # flow model's nfiles <= ntasks constraint on the read leg only).
    nfiles = min(nfiles, nwriters)
    write = parallel_io(profile, nwriters, data, op="write", nfiles=nfiles)
    read = parallel_io(
        profile, nreaders, data, op="read", nfiles=min(nfiles, nreaders),
        use_cache=use_cache,
    )
    return RestartAnalysisResult(
        nwriters=nwriters,
        nreaders=nreaders,
        nfiles=nfiles,
        data_bytes=data,
        write=write,
        read=read,
    )


def sweep_reader_counts(
    profile: SystemProfile,
    nwriters: int,
    reader_counts: list[int],
    bytes_per_writer: float,
    nfiles: int = 16,
) -> list[RestartAnalysisResult]:
    """The m-axis sweep: how small may the analysis job shrink before
    the read starves for client bandwidth?"""
    return [
        run_restart_analysis(profile, nwriters, m, bytes_per_writer, nfiles)
        for m in reader_counts
    ]


@dataclass
class RepartitionRoundtrip:
    """Outcome of one real-library write-n/read-m cycle (verified)."""

    nwriters: int
    nreaders: int
    nfiles: int
    bytes_total: int
    reader_bytes: list[int]

    @property
    def read_fanin(self) -> float:
        return self.nwriters / self.nreaders


def repartition_roundtrip(
    backend: Backend,
    nwriters: int,
    nreaders: int,
    payload_of: Callable[[int], bytes],
    *,
    chunksize: int,
    fsblksize: int | None = None,
    nfiles: int = 1,
    mapping: "str | list[int]" = "blocked",
    engine: str = "threads",
    write_collectors: int | None = None,
    read_collectsize: int | None = None,
    path: str = "/repartition.sion",
) -> RepartitionRoundtrip:
    """Write a checkpoint with ``nwriters`` tasks, read it with ``nreaders``.

    Byte identity is verified *inside* each reader rank (against the
    deterministic ``payload_of`` schedule), so a 64k-stream cycle never
    ships its full contents back to the driver.  Raises
    :class:`~repro.errors.ReproError` on any divergence.
    """
    from repro.sion import paropen
    from repro.simmpi import run_spmd

    def write_task(comm):
        f = paropen(
            path, "w", comm, chunksize=chunksize, fsblksize=fsblksize,
            nfiles=nfiles, mapping=mapping, backend=backend,
            collectors=write_collectors,
        )
        f.fwrite(payload_of(comm.rank))
        f.parclose()

    run_spmd(nwriters, write_task, engine=engine)

    partition = ReadPartition.balanced(nwriters, nreaders)

    def read_task(comm):
        f = paropen(
            path, "r", comm, backend=backend, partitioned=True,
            collectsize=read_collectsize,
        )
        data = f.read_all()
        f.parclose()
        expected = b"".join(
            payload_of(w) for w in partition.writers_of(comm.rank)
        )
        if data != expected:
            raise ReproError(
                f"reader {comm.rank} of {nreaders} diverged: got "
                f"{len(data)} bytes, expected {len(expected)}"
            )
        return len(data)

    reader_bytes = run_spmd(nreaders, read_task, engine=engine)
    return RepartitionRoundtrip(
        nwriters=nwriters,
        nreaders=nreaders,
        nfiles=nfiles,
        bytes_total=sum(reader_bytes),
        reader_bytes=list(reader_bytes),
    )
