"""TCP frame protocol for the read gateway: out-of-process consumers.

The wire format is deliberately boring — one frame per message:

.. code-block:: text

    +----------------+----------------------+------------------+
    | header length  |  JSON header         |  binary payload  |
    | 4 bytes (BE)   |  header-length bytes |  header.plen     |
    +----------------+----------------------+------------------+

Requests are JSON headers with an ``op`` field (``open_session``,
``read``, ``read_all``, ``eof``, ``read_task``, ``read_range``,
``close_session``, ``stats``, ``ping``); chunk payload travels as the
binary tail of the response frame, so record bytes are never base64'd
or embedded in JSON.  Errors come back as ``{"ok": false, "kind": ...,
"error": ...}`` and are re-raised client-side as
:class:`~repro.errors.SionUsageError`.

:class:`GatewayServer` wraps one :class:`~repro.serve.gateway.ReadGateway`
(all connections share its container table and chunk cache);
:class:`GatewayClient` is the matching asyncio client.  Both are plain
asyncio — one coroutine per connection, requests on a connection are
answered in order.

Shutdown comes in two grades: :meth:`GatewayServer.stop` folds the
listener and gateway immediately, while
:meth:`GatewayServer.request_shutdown` (wired to SIGINT/SIGTERM by the
``repro-serve`` CLI) starts a *graceful drain* — stop accepting, answer
every request already on the wire, close idle connections, then close
the gateway.  A request racing the signal is answered; one sent after
its connection drained is not.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any

from repro.errors import SionUsageError
from repro.serve.gateway import ReadGateway

_LEN = struct.Struct(">I")

#: Refuse headers over this size: nothing legitimate comes close.
MAX_HEADER = 1 << 20


async def _read_frame(reader: asyncio.StreamReader) -> "tuple[dict, bytes] | None":
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        raw_len = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise SionUsageError("truncated frame header") from exc
    (hlen,) = _LEN.unpack(raw_len)
    if hlen > MAX_HEADER:
        raise SionUsageError(f"frame header of {hlen} bytes exceeds {MAX_HEADER}")
    try:
        header = json.loads(await reader.readexactly(hlen))
        payload = await reader.readexactly(int(header.get("plen", 0)))
    except asyncio.IncompleteReadError as exc:
        raise SionUsageError("connection closed mid-frame") from exc
    return header, payload


def _write_frame(
    writer: asyncio.StreamWriter, header: dict, payload: bytes = b""
) -> None:
    """Queue one frame on ``writer`` (caller drains)."""
    if payload:
        header = {**header, "plen": len(payload)}
    blob = json.dumps(header, separators=(",", ":")).encode()
    writer.write(_LEN.pack(len(blob)) + blob + payload)


class GatewayServer:
    """Serve a :class:`ReadGateway` over TCP.

    Example::

        server = GatewayServer(ReadGateway(backend))
        await server.start()                  # port 0 -> OS-assigned
        ... # connect GatewayClient("127.0.0.1", server.port)
        await server.stop()

    Sessions opened over a connection are owned by it: when the
    connection drops, its sessions are closed automatically so a dead
    client never leaks cursor state.
    """

    def __init__(
        self, gateway: ReadGateway, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        """Bind (lazily) to ``host``/``port``; ``port=0`` asks the OS."""
        self.gateway = gateway
        self.host = host
        self.port = port
        self._server: "asyncio.base_events.Server | None" = None
        self._shutdown = asyncio.Event()
        self._conn_tasks: "set[asyncio.Task]" = set()

    async def start(self) -> None:
        """Open the listening socket; :attr:`port` is real afterwards."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop listening and close the gateway's containers *now*.

        The abrupt counterpart of :meth:`shutdown`: in-flight requests
        are not waited for (their connections fold when the loop goes
        away).  Also releases any :meth:`serve_until_shutdown` waiter.
        """
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.gateway.close()

    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent; safe in a signal handler).

        Closes the listening socket so no new connection is accepted and
        tells every connection handler to finish the request it is
        serving (if any) and then fold.  Returns immediately — await
        :meth:`shutdown` or :meth:`serve_until_shutdown` for completion.
        """
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        if self._server is not None:
            self._server.close()

    async def shutdown(self) -> None:
        """Drain gracefully: answer in-flight requests, then close up.

        Triggers :meth:`request_shutdown` if nothing has yet, waits for
        every live connection handler to retire, then closes the
        listener and the gateway's containers.
        """
        self.request_shutdown()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        self.gateway.close()

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled (legacy entry point)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def serve_until_shutdown(self) -> None:
        """Serve until :meth:`request_shutdown` fires, then drain and stop.

        The CLI entry point: wire ``loop.add_signal_handler(sig,
        server.request_shutdown)`` and await this — it returns once
        every in-flight request has been answered and the gateway is
        closed.
        """
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.shutdown()

    async def _next_frame(
        self, reader: asyncio.StreamReader
    ) -> "tuple[dict, bytes] | None":
        """One request frame, or ``None`` on EOF *or* shutdown while idle.

        Races the frame read against the drain event so an idle
        connection folds promptly; a frame that wins the race is still
        returned (and answered) even if the drain fires the same tick.
        """
        read = asyncio.ensure_future(_read_frame(reader))
        stop = asyncio.ensure_future(self._shutdown.wait())
        try:
            done, _ = await asyncio.wait(
                {read, stop}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            stop.cancel()
        if read in done:
            return read.result()
        read.cancel()
        try:
            await read
        except (asyncio.CancelledError, SionUsageError, ConnectionError):
            pass
        return None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        owned: set[int] = set()
        try:
            while not self._shutdown.is_set():
                frame = await self._next_frame(reader)
                if frame is None:
                    break
                header, _payload = frame
                try:
                    reply, payload = await self._dispatch(header, owned)
                except SionUsageError as exc:
                    reply, payload = (
                        {"ok": False, "kind": "usage", "error": str(exc)},
                        b"",
                    )
                except Exception as exc:  # noqa: BLE001 - wire boundary
                    reply, payload = (
                        {"ok": False, "kind": type(exc).__name__, "error": str(exc)},
                        b"",
                    )
                _write_frame(writer, reply, payload)
                await writer.drain()
        except (SionUsageError, ConnectionError):
            pass  # protocol violation or abrupt drop: just fold the connection
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            for sid in owned:
                try:
                    await self.gateway.close_session(sid)
                except SionUsageError:
                    pass  # already closed by the client
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # last statement of the handler: nothing left to cancel

    async def _dispatch(
        self, header: dict, owned: set[int]
    ) -> tuple[dict, bytes]:
        op = header.get("op")
        gw = self.gateway
        if op == "ping":
            return {"ok": True}, b""
        if op == "stats":
            return {"ok": True, "stats": await gw.stats()}, b""
        if op == "open_session":
            sid = await gw.open_session(
                header["path"],
                readers=header.get("readers"),
                reader=header.get("reader"),
                rank=header.get("rank"),
            )
            owned.add(sid)
            return {"ok": True, "session": sid}, b""
        if op == "read":
            data = await gw.read(header["session"], header["n"])
            return {"ok": True}, data
        if op == "read_all":
            data = await gw.read_all(header["session"])
            return {"ok": True}, data
        if op == "eof":
            return {"ok": True, "eof": await gw.session_eof(header["session"])}, b""
        if op == "read_task":
            data = await gw.read_task(header["path"], header["rank"])
            return {"ok": True}, data
        if op == "read_range":
            data = await gw.read_range(
                header["path"], header["rank"], header["offset"], header["n"]
            )
            return {"ok": True}, data
        if op == "close_session":
            await gw.close_session(header["session"])
            owned.discard(header["session"])
            return {"ok": True}, b""
        raise SionUsageError(f"unknown op {op!r}")


class GatewayClient:
    """Asyncio client for a :class:`GatewayServer`.

    Mirrors the :class:`ReadGateway` session API over one connection::

        client = await GatewayClient.connect("127.0.0.1", server.port)
        sid = await client.open_session("/ckpt.sion", rank=7)
        data = await client.read(sid, 4096)
        await client.close()

    One in-flight request per client; open several clients for
    connection-level concurrency.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Wrap an established connection (use :meth:`connect`)."""
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str, port: int) -> "GatewayClient":
        """Open a TCP connection to a running gateway server."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _call(self, header: dict) -> tuple[dict, bytes]:
        async with self._lock:
            _write_frame(self._writer, header)
            await self._writer.drain()
            frame = await _read_frame(self._reader)
        if frame is None:
            raise SionUsageError("server closed the connection")
        reply, payload = frame
        if not reply.get("ok"):
            raise SionUsageError(
                f"gateway error ({reply.get('kind')}): {reply.get('error')}"
            )
        return reply, payload

    async def ping(self) -> bool:
        """Round-trip liveness probe."""
        reply, _ = await self._call({"op": "ping"})
        return bool(reply["ok"])

    async def stats(self) -> dict[str, Any]:
        """The server's stats endpoint (gateway + cache telemetry)."""
        reply, _ = await self._call({"op": "stats"})
        return reply["stats"]

    async def open_session(
        self,
        path: str,
        *,
        readers: "int | None" = None,
        reader: "int | None" = None,
        rank: "int | None" = None,
    ) -> int:
        """Open a record-read session (see :meth:`ReadGateway.open_session`)."""
        header: dict[str, Any] = {"op": "open_session", "path": path}
        if readers is not None:
            header["readers"] = readers
        if reader is not None:
            header["reader"] = reader
        if rank is not None:
            header["rank"] = rank
        reply, _ = await self._call(header)
        return int(reply["session"])

    async def read(self, session: int, n: int) -> bytes:
        """Read up to ``n`` record bytes from ``session``."""
        _, payload = await self._call({"op": "read", "session": session, "n": n})
        return payload

    async def read_all(self, session: int) -> bytes:
        """Drain everything that remains of ``session``'s slice."""
        _, payload = await self._call({"op": "read_all", "session": session})
        return payload

    async def session_eof(self, session: int) -> bool:
        """True once ``session``'s slice is exhausted."""
        reply, _ = await self._call({"op": "eof", "session": session})
        return bool(reply["eof"])

    async def read_task(self, path: str, rank: int) -> bytes:
        """Whole logical stream of writer ``rank`` (stateless)."""
        _, payload = await self._call(
            {"op": "read_task", "path": path, "rank": rank}
        )
        return payload

    async def read_range(self, path: str, rank: int, offset: int, n: int) -> bytes:
        """Stateless ranged read inside writer ``rank``'s stream."""
        _, payload = await self._call(
            {"op": "read_range", "path": path, "rank": rank, "offset": offset, "n": n}
        )
        return payload

    async def close_session(self, session: int) -> None:
        """Retire one server-side session."""
        await self._call({"op": "close_session", "session": session})

    async def close(self) -> None:
        """Close the connection (server reaps any sessions it still owns)."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
