"""The asyncio read gateway: sealed containers served as a long-lived store.

One :class:`ReadGateway` owns three resident layers:

* a **container table** — each sealed multifile is opened once, its
  metablocks decoded once, and every later session is compiled from the
  in-memory metadata (this is the metadata half of the cache);
* a shared :class:`~repro.fs.cache.ChunkCache` — chunk payload served
  block-granularly with LRU eviction against a byte budget, entries
  tagged with the container's *generation* so a re-sealed file never
  serves stale bytes;
* **sessions** — read cursors compiled on demand from the same
  :class:`~repro.sion.mapping.ReadPartition` arithmetic the SPMD
  partitioned read uses: a session owns a contiguous slice of writer
  task streams and drains it with record (``fread``) semantics, while
  stateless ranged reads address any writer stream at any logical
  offset.

Freshness contract (generation tags): every opened container carries a
fingerprint of its *metablock identity* — per physical file, a digest of
metablock 1, the metablock-2 offset and CRC, and the file size.  Session
opens revalidate cheaply with the backend's stat-level
``identity_token`` (mtime/inode on the local FS, the exact mutation
version in the simulator — never a data read); any token mismatch
triggers a full metadata reload under a fresh generation, and the old
generation's cache entries are dropped wholesale (chunk payload can
mutate without the metablocks changing, so a mismatched token is never
second-guessed).  On a backend whose token cannot see a given re-seal
(the default token folds only sizes), call :meth:`ReadGateway.refresh`
to force a new generation.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import threading
import zlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Sequence

from repro.backends.base import Backend, RawFile
from repro.backends.caching import CachingRawFile
from repro.backends.localfs import LocalBackend
from repro.errors import SionUsageError
from repro.fs.cache import DEFAULT_CACHE_BLOCK, ChunkCache
from repro.sion.compression import ZlibReader
from repro.sion.constants import FLAG_COMPRESS, FLAG_SHADOW
from repro.sion.format import Metablock1, Metablock2
from repro.sion.layout import ChunkLayout
from repro.sion.mapping import ReadPartition, TaskMapping, physical_path
from repro.sion.openspec import load_metablocks
from repro.sion.readwrite import PartitionStream, TaskStream

#: Default chunk-cache byte budget of a gateway that is not given one.
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class _FileInfo:
    """Decoded metadata plus the cached read handle of one physical file."""

    path: str
    mb1: Metablock1
    mb2: Metablock2
    layout: ChunkLayout
    raw: RawFile
    size: int
    token: tuple


@dataclass
class GatewayStats:
    """Gateway-level telemetry (the cache keeps its own, see ``snapshot``)."""

    containers_opened: int = 0
    container_reuses: int = 0
    reseals_detected: int = 0
    sessions_opened: int = 0
    sessions_active: int = 0
    sessions_peak: int = 0
    reads: int = 0
    bytes_served: int = 0


class ContainerHandle:
    """One sealed multifile held open by the gateway.

    Owns the decoded metadata of every physical file, the caching read
    handles, and the per-stream prefix sums that turn a logical byte
    offset into a ``(block, pos)`` cursor for ranged reads.  All state is
    immutable after construction; sessions share it freely.
    """

    def __init__(
        self,
        path: str,
        generation: int,
        tmap: TaskMapping,
        files: "list[_FileInfo]",
    ) -> None:
        """Bind the decoded metadata of ``path`` under ``generation``."""
        self.path = path
        self.generation = generation
        self.tmap = tmap
        self.files = files
        flags = files[0].mb1.flags
        self.compress = bool(flags & FLAG_COMPRESS)
        self.shadow = bool(flags & FLAG_SHADOW)
        self._prefix_cache: dict[int, list[int]] = {}
        self._lock = threading.Lock()

    # -- identity ------------------------------------------------------------

    @property
    def ntasks(self) -> int:
        """Writer task streams recorded in the container."""
        return self.tmap.ntasks

    @property
    def nfiles(self) -> int:
        """Physical files of the container."""
        return self.tmap.nfiles

    @property
    def fingerprint(self) -> tuple:
        """Metablock identity: digests of both metablocks plus file sizes.

        The metablock-2 CRC is taken over the encoded payload *without*
        its trailing stored CRC — a CRC over the self-checksummed bytes
        would be the constant CRC-32 residue for every container.
        """
        return tuple(
            (
                hashlib.sha256(fi.mb1.encode()).hexdigest(),
                fi.mb1.metablock2_offset,
                zlib.crc32(fi.mb2.encode()[:-4]) & 0xFFFFFFFF,
                fi.size,
            )
            for fi in self.files
        )

    @property
    def tokens(self) -> tuple:
        """Per-file identity tokens at open time (the revalidation probe)."""
        return tuple(fi.token for fi in self.files)

    # -- per-stream access ----------------------------------------------------

    def blocksizes_of(self, grank: int) -> list[int]:
        """Recorded per-block byte counts of writer stream ``grank``."""
        self._check_rank(grank)
        f = self.tmap.file_of(grank)
        return list(self.files[f].mb2.blocksizes[self.tmap.local_rank(grank)])

    def stream_bytes(self, grank: int) -> int:
        """Total recorded (compressed) bytes of writer stream ``grank``."""
        return self._prefix(grank)[-1]

    def stream(self, grank: int) -> TaskStream:
        """A fresh read cursor over writer stream ``grank``.

        Cursors are cheap: the handle, layout and block sizes are all
        shared; only the cursor position is per-stream state.
        """
        self._check_rank(grank)
        f = self.tmap.file_of(grank)
        fi = self.files[f]
        return TaskStream(
            fi.raw,
            fi.layout,
            self.tmap.local_rank(grank),
            "r",
            blocksizes=self.blocksizes_of(grank),
            shadow=self.shadow,
        )

    def read_task(self, grank: int) -> bytes:
        """Entire logical content of writer stream ``grank``.

        Transparently decompresses when the container was sealed with
        ``compress=True`` (each writer stream is an independent zlib
        stream).
        """
        raw = self.stream(grank).read_all()
        if not self.compress:
            return raw
        zr = ZlibReader()
        zr.feed(raw)
        zr.source_exhausted()
        return zr.take(zr.available())

    def read_range(self, grank: int, offset: int, n: int) -> bytes:
        """Up to ``n`` bytes of stream ``grank`` starting at logical ``offset``.

        The offset addresses the *recorded* chunk-stream bytes; ranged
        addressing of a compressed stream is rejected (offsets into
        deflate output are not meaningful record positions — use
        :meth:`read_task` or a session).

        Raises :class:`~repro.errors.SionUsageError` on a negative
        offset/size or a compressed container.
        """
        if self.compress:
            raise SionUsageError(
                "ranged reads are unavailable with transparent compression; "
                "use read_task or a record session"
            )
        if offset < 0 or n < 0:
            raise SionUsageError("offset and size must be non-negative")
        prefix = self._prefix(grank)
        total = prefix[-1]
        if offset >= total or n == 0:
            return b""
        block = bisect_right(prefix, offset) - 1
        stream = self.stream(grank)
        stream.seek_logical(block, offset - prefix[block])
        return stream.fread(n)

    def close(self) -> None:
        """Close the physical handles (cached blocks stay resident)."""
        for fi in self.files:
            fi.raw.close()

    # -- internals ----------------------------------------------------------

    def _prefix(self, grank: int) -> list[int]:
        """Cumulative byte offsets of ``grank``'s blocks (cached)."""
        self._check_rank(grank)
        with self._lock:
            prefix = self._prefix_cache.get(grank)
            if prefix is None:
                prefix = [0]
                for b in self.blocksizes_of(grank):
                    prefix.append(prefix[-1] + b)
                self._prefix_cache[grank] = prefix
            return prefix

    def _check_rank(self, grank: int) -> None:
        if not 0 <= grank < self.ntasks:
            raise SionUsageError(
                f"writer rank {grank} out of range ({self.ntasks} streams)"
            )


class GatewaySession:
    """One client's record-read cursor over a slice of writer streams.

    Mirrors the SPMD partitioned read: the session owns a contiguous
    slice of the container's task streams (``readers``/``reader`` name
    the slice exactly like :class:`~repro.sion.mapping.ReadPartition`,
    ``rank`` selects a single stream) and drains it with ``fread``
    semantics across chunk and stream boundaries.  Compressed containers
    are served through per-stream zlib readers, like
    :class:`~repro.sion.openspec.SionPartitionedReadFile`.
    """

    def __init__(
        self, session_id: int, container: ContainerHandle, writers: Sequence[int]
    ) -> None:
        """Compile the session's cursor over ``writers`` (global ranks)."""
        self.id = session_id
        self.container = container
        self.writers = tuple(writers)
        self.reads = 0
        self.bytes_read = 0
        self.closed = False
        self._streams = [container.stream(g) for g in self.writers]
        self._mux = PartitionStream(self._streams)
        self._zrs = (
            [ZlibReader() for _ in self._streams] if container.compress else None
        )
        self._zidx = 0

    def feof(self) -> bool:
        """True once every stream of the slice is exhausted."""
        if self._zrs is not None:
            return self._zcur() is None
        return self._mux.feof()

    def fread(self, n: int) -> bytes:
        """Read up to ``n`` logical bytes, crossing chunk/stream boundaries.

        Raises :class:`~repro.errors.SionUsageError` on a negative size
        or a closed session.
        """
        if self.closed:
            raise SionUsageError(f"session {self.id} is closed")
        if n < 0:
            raise SionUsageError("read size must be non-negative")
        if self._zrs is None:
            out = self._mux.fread(n)
        else:
            out = self._zread(n)
        self.reads += 1
        self.bytes_read += len(out)
        return out

    def read_all(self) -> bytes:
        """Everything that remains of the slice."""
        if self._zrs is None:
            if self.closed:
                raise SionUsageError(f"session {self.id} is closed")
            out = self._mux.read_all()
            self.reads += 1
            self.bytes_read += len(out)
            return out
        parts = []
        while True:
            piece = self.fread(1 << 20)
            if not piece:
                break
            parts.append(piece)
        return b"".join(parts)

    def close(self) -> None:
        """Retire the cursor (the container stays open for other sessions)."""
        self.closed = True

    # -- compressed multiplexing (mirrors SionPartitionedReadFile) ----------

    def _zcur(self):
        assert self._zrs is not None
        while self._zidx < len(self._streams):
            zr = self._zrs[self._zidx]
            if not zr.exhausted or zr.available():
                return zr, self._streams[self._zidx]
            self._zidx += 1
        return None

    def _zread(self, n: int) -> bytes:
        parts: list[bytes] = []
        want = n
        while want > 0:
            cur = self._zcur()
            if cur is None:
                break
            zr, stream = cur
            while zr.available() < want and not stream.feof():
                piece = stream.fread(64 * 1024)
                if not piece:
                    break
                zr.feed(piece)
            if stream.feof():
                zr.source_exhausted()
            piece = zr.take(want)
            if not piece and zr.exhausted:
                self._zidx += 1
                continue
            if not piece:
                break
            parts.append(piece)
            want -= len(piece)
        return b"".join(parts)


class ReadGateway:
    """Long-lived asyncio read gateway over sealed multifile containers.

    The in-process client API: open a container once, compile read
    sessions on demand, answer concurrent ranged/record reads from any
    number of asyncio tasks.  All session state is per-session, so
    thousands of coroutines interleave freely; each read yields to the
    event loop once for fairness.

    The synchronous core (:meth:`open_container`,
    :meth:`ContainerHandle.read_range`, ...) is also usable directly
    from non-async code — the SPMD engines, tools, and tests do so.
    """

    def __init__(
        self,
        backend: "Backend | None" = None,
        *,
        cache: "ChunkCache | None" = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        cache_block: int = DEFAULT_CACHE_BLOCK,
    ) -> None:
        """Create a gateway over ``backend`` (default: the local FS).

        ``cache`` shares an existing :class:`ChunkCache` between several
        gateways; otherwise a private cache with ``cache_bytes`` budget
        and ``cache_block`` granularity is created.  ``cache_bytes=0``
        disables payload caching without changing any code path.
        """
        self.backend = backend if backend is not None else LocalBackend()
        self.cache = cache if cache is not None else ChunkCache(cache_bytes, cache_block)
        self.stats_gateway = GatewayStats()
        self._containers: dict[str, ContainerHandle] = {}
        self._sessions: dict[int, GatewaySession] = {}
        self._session_ids = itertools.count(1)
        self._generations = itertools.count(1)
        self._lock = threading.RLock()

    # -- container management (sync core) ------------------------------------

    def open_container(self, path: str, *, refresh: bool = False) -> ContainerHandle:
        """Open (or reuse) the sealed container at ``path``.

        The fast path — container already resident and every physical
        file's ``identity_token`` unchanged — costs one stat per file,
        never a data read.  A token mismatch means the file mutated: the
        metadata is reloaded under a fresh generation and the old
        generation's cache entries are dropped.  ``refresh=True`` forces
        the same reload unconditionally (the escape hatch for a re-seal
        the backend's token cannot see).

        Raises :class:`~repro.errors.SionFormatError` on a damaged
        container and ``OSError``-family errors from the backend.
        """
        with self._lock:
            handle = self._containers.get(path)
            if handle is not None and not refresh and self._tokens_unchanged(handle):
                self.stats_gateway.container_reuses += 1
                return handle
            fresh = self._load(path)
            if handle is not None:
                # Reaching a reload with a resident handle means the token
                # mismatched (or refresh was forced): the file mutated, and
                # chunk payload can change without the metablocks changing,
                # so the old generation is retired wholesale.
                self.cache.drop_generation(handle.generation)
                handle.close()
                self.stats_gateway.reseals_detected += 1
            self._containers[path] = fresh
            self.stats_gateway.containers_opened += 1
            return fresh

    def refresh(self, path: str) -> ContainerHandle:
        """Force-reload ``path`` under a new generation (drop cached bytes)."""
        return self.open_container(path, refresh=True)

    def close(self) -> None:
        """Close every container handle and retire all sessions."""
        with self._lock:
            for session in self._sessions.values():
                session.close()
            self._sessions.clear()
            self.stats_gateway.sessions_active = 0
            for handle in self._containers.values():
                self.cache.drop_generation(handle.generation)
                handle.close()
            self._containers.clear()

    def _tokens_unchanged(self, handle: ContainerHandle) -> bool:
        """The cheap per-session-open revalidation probe (stat, no data reads)."""
        try:
            return handle.tokens == tuple(
                self.backend.identity_token(fi.path) for fi in handle.files
            )
        except Exception:  # noqa: BLE001 - a vanished file is "changed"
            return False

    def _load(self, path: str) -> ContainerHandle:
        """Decode the whole set's metadata once and wrap cached handles."""
        generation = next(self._generations)
        raw0 = self.backend.open(path, "rb")
        try:
            mb1_0 = Metablock1.decode_from(raw0)
        finally:
            raw0.close()
        tmap = TaskMapping.from_kind_code(
            mb1_0.ntasks_global, mb1_0.nfiles, mb1_0.mapping_kind, mb1_0.mapping_table
        )
        files: list[_FileInfo] = []
        for f in range(mb1_0.nfiles):
            fpath = physical_path(path, f)
            raw = CachingRawFile(
                self.backend.open(fpath, "rb"), self.cache, generation, fpath
            )
            mb1, mb2, layout = load_metablocks(raw)
            files.append(
                _FileInfo(
                    path=fpath,
                    mb1=mb1,
                    mb2=mb2,
                    layout=layout,
                    raw=raw,
                    size=self.backend.file_size(fpath),
                    token=self.backend.identity_token(fpath),
                )
            )
        return ContainerHandle(path, generation, tmap, files)

    # -- async session API ----------------------------------------------------

    async def open_session(
        self,
        path: str,
        *,
        readers: "int | None" = None,
        reader: "int | None" = None,
        rank: "int | None" = None,
    ) -> int:
        """Open a record-read session; returns its session id.

        Two slice shapes exist:

        * ``readers=m, reader=r`` — the session owns reader ``r``'s
          contiguous slice of an ``m``-way balanced
          :class:`~repro.sion.mapping.ReadPartition` over the writer
          streams (exactly what an SPMD partitioned reader would see);
        * ``rank=g`` — the session owns the single writer stream ``g``.

        Raises :class:`~repro.errors.SionUsageError` when neither or
        both shapes are given, or when the indices are out of range.
        """
        await asyncio.sleep(0)
        if (rank is None) == (readers is None and reader is None):
            raise SionUsageError(
                "pass either rank=g or readers=m with reader=r"
            )
        if rank is None and (readers is None or reader is None):
            raise SionUsageError("readers and reader must be given together")
        handle = self.open_container(path)
        if rank is not None:
            writers: Sequence[int] = (rank,) if handle.ntasks > rank >= 0 else ()
            if not writers:
                raise SionUsageError(
                    f"writer rank {rank} out of range ({handle.ntasks} streams)"
                )
        else:
            assert readers is not None and reader is not None
            part = ReadPartition.balanced(handle.ntasks, readers)
            if not 0 <= reader < readers:
                raise SionUsageError(
                    f"reader {reader} out of range ({readers} readers)"
                )
            writers = part.writers_of(reader)
        with self._lock:
            sid = next(self._session_ids)
            session = GatewaySession(sid, handle, writers)
            self._sessions[sid] = session
            gs = self.stats_gateway
            gs.sessions_opened += 1
            gs.sessions_active += 1
            gs.sessions_peak = max(gs.sessions_peak, gs.sessions_active)
        return sid

    async def read(self, session_id: int, n: int) -> bytes:
        """Read up to ``n`` record bytes from session ``session_id``."""
        await asyncio.sleep(0)
        out = self._session(session_id).fread(n)
        self._count_read(len(out))
        return out

    async def read_all(self, session_id: int) -> bytes:
        """Drain everything that remains of the session's slice."""
        await asyncio.sleep(0)
        out = self._session(session_id).read_all()
        self._count_read(len(out))
        return out

    async def session_eof(self, session_id: int) -> bool:
        """True once the session's slice is exhausted."""
        await asyncio.sleep(0)
        return self._session(session_id).feof()

    async def read_task(self, path: str, rank: int) -> bytes:
        """Whole logical stream of writer ``rank`` (stateless record read)."""
        await asyncio.sleep(0)
        out = self.open_container(path).read_task(rank)
        self._count_read(len(out))
        return out

    async def read_range(self, path: str, rank: int, offset: int, n: int) -> bytes:
        """Stateless ranged read inside writer ``rank``'s logical stream."""
        await asyncio.sleep(0)
        out = self.open_container(path).read_range(rank, offset, n)
        self._count_read(len(out))
        return out

    async def close_session(self, session_id: int) -> None:
        """Retire one session (idempotent per id; unknown ids raise)."""
        await asyncio.sleep(0)
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is None:
                raise SionUsageError(f"unknown session {session_id}")
            session.close()
            self.stats_gateway.sessions_active -= 1

    async def stats(self) -> dict[str, Any]:
        """The stats endpoint: gateway counters plus cache telemetry."""
        await asyncio.sleep(0)
        return self.snapshot()

    # -- sync introspection ---------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Synchronous form of :meth:`stats` (tools, tests, bench)."""
        with self._lock:
            gs = self.stats_gateway
            return {
                "containers": {
                    p: {
                        "generation": h.generation,
                        "ntasks": h.ntasks,
                        "nfiles": h.nfiles,
                        "compress": h.compress,
                        "shadow": h.shadow,
                    }
                    for p, h in self._containers.items()
                },
                "containers_opened": gs.containers_opened,
                "container_reuses": gs.container_reuses,
                "reseals_detected": gs.reseals_detected,
                "sessions_opened": gs.sessions_opened,
                "sessions_active": gs.sessions_active,
                "sessions_peak": gs.sessions_peak,
                "reads": gs.reads,
                "bytes_served": gs.bytes_served,
                "cache": self.cache.snapshot(),
            }

    def _session(self, session_id: int) -> GatewaySession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SionUsageError(f"unknown session {session_id}")
        return session

    def _count_read(self, nbytes: int) -> None:
        with self._lock:
            self.stats_gateway.reads += 1
            self.stats_gateway.bytes_served += nbytes
