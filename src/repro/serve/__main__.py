"""``python -m repro.serve``: run a read gateway over TCP.

Serves one or more sealed multifiles::

    python -m repro.serve out.sion --port 7777 --cache-bytes 67108864

Containers named on the command line are opened eagerly (fail fast on a
damaged set); any path a client asks for is opened on demand.

SIGINT (Ctrl-C) and SIGTERM trigger a graceful drain: the listener
closes immediately, requests already on the wire are answered, idle
connections fold, and the process exits 0 once the gateway is closed.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.errors import ReproError
from repro.fs.cache import DEFAULT_CACHE_BLOCK
from repro.serve.gateway import DEFAULT_CACHE_BYTES, ReadGateway
from repro.serve.server import GatewayServer


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    ap = argparse.ArgumentParser(
        prog="repro-serve",
        description="serve sealed multifile containers over TCP",
    )
    ap.add_argument("paths", nargs="*", help="containers to open eagerly")
    ap.add_argument("--host", default="127.0.0.1", help="bind address")
    ap.add_argument("--port", type=int, default=0, help="port (0 = OS-assigned)")
    ap.add_argument(
        "--cache-bytes",
        type=int,
        default=DEFAULT_CACHE_BYTES,
        help="chunk-cache byte budget (0 disables payload caching)",
    )
    ap.add_argument(
        "--cache-block",
        type=int,
        default=DEFAULT_CACHE_BLOCK,
        help="chunk-cache block granularity in bytes",
    )
    args = ap.parse_args(argv)

    gateway = ReadGateway(
        cache_bytes=args.cache_bytes, cache_block=args.cache_block
    )
    try:
        for path in args.paths:
            handle = gateway.open_container(path)
            print(
                f"opened {path}: {handle.ntasks} streams in "
                f"{handle.nfiles} file(s)",
                file=sys.stderr,
            )
    except (ReproError, OSError) as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 1

    server = GatewayServer(gateway, host=args.host, port=args.port)

    async def _run() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-POSIX loop
                pass
        print(f"serving on {server.host}:{server.port}", file=sys.stderr)
        await server.serve_until_shutdown()
        print("repro-serve: drained, gateway closed", file=sys.stderr)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - non-POSIX fallback path
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
