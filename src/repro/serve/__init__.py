"""``repro.serve`` — a long-lived read gateway over sealed containers.

The paper's multifile is a *portable container*: all metadata lives in
the file, not in the job, so a sealed checkpoint can be consumed by any
later consumer.  This package serves that capability as a store:

* :class:`ReadGateway` — the in-process client API.  Opens a sealed
  multifile **once**, keeps its decoded metadata resident (the metadata
  half of the cache), compiles read-only access plans on demand, and
  answers concurrent ranged and record reads from thousands of
  simultaneous asyncio sessions over the existing
  :class:`~repro.sion.mapping.ReadPartition` + vectored ``gather_read``
  storage engine.
* :class:`~repro.fs.cache.ChunkCache` — the shared LRU chunk cache
  (re-exported here) sitting between the planner and the backends, with
  a configurable byte budget, per-entry generation tags keyed on
  metablock identity, and hit/miss/eviction/bytes-served telemetry
  surfaced through the gateway's :meth:`ReadGateway.stats` endpoint.
* :class:`GatewayServer` / :class:`GatewayClient` — an asyncio TCP
  frame protocol exposing the same operations over a socket, for
  out-of-process consumers (``python -m repro.serve PATH`` runs one).

Example (in-process)::

    gateway = ReadGateway(backend=backend, cache_bytes=64 << 20)
    session = await gateway.open_session("/ckpt.sion", readers=32, reader=0)
    record = await gateway.read(session, 4096)     # crosses stream bounds
    stats = await gateway.stats()                  # incl. cache telemetry
"""

from repro.backends.caching import CachingRawFile
from repro.fs.cache import ChunkCache
from repro.serve.gateway import ContainerHandle, GatewaySession, ReadGateway
from repro.serve.server import GatewayClient, GatewayServer

__all__ = [
    "CachingRawFile",
    "ChunkCache",
    "ContainerHandle",
    "GatewayClient",
    "GatewayServer",
    "GatewaySession",
    "ReadGateway",
]
