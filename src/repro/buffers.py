"""Buffer-view discipline for the zero-copy data plane.

Every layer of the byte-movement path — :class:`~repro.sion.buffering.CoalescingWriter`,
:class:`~repro.sion.readwrite.TaskStream`, the transparent compression
wrapper, and the backends — accepts any object exporting the buffer
protocol (``bytes``, ``bytearray``, ``memoryview``, NumPy arrays) and
forwards a flat byte *view* of it instead of materializing intermediate
``bytes`` copies.  :func:`as_view` is the single normalization point:

* contiguous buffers are wrapped without copying (slices of the returned
  view keep referencing the caller's memory all the way down to the
  backend, where the final store copy happens);
* non-contiguous exporters (e.g. a strided NumPy slice) cannot be
  byte-cast, so they are flattened with exactly **one** materializing
  copy at this entry boundary — never again further down.

The module is dependency-free on purpose: both ``repro.backends`` and
``repro.fs`` import it, and those two packages import each other.
"""

from __future__ import annotations

from typing import Union

#: Anything the data plane accepts as a write payload.
BufferLike = Union[bytes, bytearray, memoryview]


def as_view(data: BufferLike) -> memoryview:
    """Flat (1-D, itemsize-1, C-contiguous) read view of ``data``.

    Wraps without copying whenever the buffer protocol allows it; the
    returned view's ``.obj`` stays the original exporter, which the
    instrumented backend uses to prove zero-copy delivery.  Raises
    ``TypeError`` for objects that do not export the buffer protocol.
    """
    view = data if type(data) is memoryview else memoryview(data)
    if (
        view.ndim != 1
        or view.itemsize != 1
        or not view.c_contiguous
        or view.format not in ("B", "b", "c")
    ):
        try:
            view = view.cast("B")
        except TypeError:
            # Non-contiguous exporter: flatten once, here and only here.
            view = memoryview(view.tobytes())
    return view


def concat_views(views: list[memoryview]) -> bytes:
    """Join read results; avoids the join when there is a single piece."""
    if len(views) == 1:
        piece = views[0]
        return piece if isinstance(piece, bytes) else bytes(piece)
    return b"".join(views)
