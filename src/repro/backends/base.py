"""Abstract storage interface consumed by the SION layer.

Kept deliberately small — exactly what the multifile format needs:
positioned binary I/O, sparse zero-extension, existence/size/blocksize
queries, and unlink.  Paths are plain strings interpreted by the backend.
"""

from __future__ import annotations

import abc


class RawFile(abc.ABC):
    """An open file supporting positioned binary I/O."""

    @abc.abstractmethod
    def seek(self, offset: int, whence: int = 0) -> int:
        """Move the file pointer; returns the new absolute position."""

    @abc.abstractmethod
    def tell(self) -> int:
        """Current absolute position."""

    @abc.abstractmethod
    def read(self, n: int = -1) -> bytes:
        """Read up to ``n`` bytes at the current position."""

    @abc.abstractmethod
    def write(self, data: bytes) -> int:
        """Write ``data`` at the current position; returns bytes written."""

    @abc.abstractmethod
    def write_zeros(self, n: int) -> int:
        """Extend by ``n`` zero bytes *without necessarily materializing them*.

        Implementations should leave a hole where the underlying store
        supports sparse files; the SION layer relies on this so empty chunk
        padding "exists only on the logical level" (paper §3.1).
        """

    @abc.abstractmethod
    def truncate(self, size: int) -> None:
        """Set the file size exactly to ``size``."""

    @abc.abstractmethod
    def flush(self) -> None:
        """Push buffered data down to the store."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the handle; subsequent operations are invalid."""

    def __enter__(self) -> "RawFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class Backend(abc.ABC):
    """A place files live: the real FS or a simulated one."""

    @abc.abstractmethod
    def open(self, path: str, mode: str) -> RawFile:
        """Open ``path``; modes follow ``io.open`` binary conventions."""

    @abc.abstractmethod
    def exists(self, path: str) -> bool:
        """True if ``path`` exists."""

    @abc.abstractmethod
    def unlink(self, path: str) -> None:
        """Delete the file at ``path``."""

    @abc.abstractmethod
    def file_size(self, path: str) -> int:
        """Logical size of the file in bytes."""

    @abc.abstractmethod
    def stat_blocksize(self, path: str) -> int:
        """File-system block size governing alignment (paper: via fstat)."""

    @abc.abstractmethod
    def allocated_size(self, path: str) -> int:
        """Physically allocated bytes (for sparseness/defrag verification)."""
