"""Abstract storage interface consumed by the SION layer.

Kept deliberately small — exactly what the multifile format needs:
positioned binary I/O, sparse zero-extension, existence/size/blocksize
queries, and unlink.  Paths are plain strings interpreted by the backend.

Two families of data calls exist:

* **streaming** — ``read``/``write`` at the implicit file pointer, used
  only for metadata blocks;
* **positioned / vectored** — ``pwrite``/``pread`` and the scatter/gather
  calls ``pwritev``/``preadv``/``scatter_write``/``gather_read``, which
  never move the file pointer.  The chunk engine uses these exclusively:
  chunk addresses are computable locally (paper §3.1), so a
  chunk-spanning write can hand the *entire* fragment list to the
  backend in one call instead of one seek+write per fragment.

All write-side calls accept any buffer-protocol object (``bytes``,
``bytearray``, ``memoryview``, NumPy arrays) and must not materialize
intermediate copies; the one unavoidable copy happens inside the store.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

from repro.buffers import BufferLike, as_view


class RawFile(abc.ABC):
    """An open file supporting positioned, vectored binary I/O."""

    @abc.abstractmethod
    def seek(self, offset: int, whence: int = 0) -> int:
        """Move the file pointer; returns the new absolute position."""

    @abc.abstractmethod
    def tell(self) -> int:
        """Current absolute position."""

    @abc.abstractmethod
    def read(self, n: int = -1) -> bytes:
        """Read up to ``n`` bytes at the current position."""

    @abc.abstractmethod
    def write(self, data: BufferLike) -> int:
        """Write ``data`` at the current position; returns bytes written."""

    @abc.abstractmethod
    def write_zeros(self, n: int) -> int:
        """Extend by ``n`` zero bytes *without necessarily materializing them*.

        Implementations should leave a hole where the underlying store
        supports sparse files; the SION layer relies on this so empty chunk
        padding "exists only on the logical level" (paper §3.1).
        """

    @abc.abstractmethod
    def truncate(self, size: int) -> None:
        """Set the file size exactly to ``size``."""

    @abc.abstractmethod
    def flush(self) -> None:
        """Push buffered data down to the store."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the handle; subsequent operations are invalid."""

    # -- positioned I/O (file pointer untouched) ---------------------------

    def pwrite(self, offset: int, data: BufferLike) -> int:
        """Write ``data`` at ``offset`` without moving the file pointer.

        Portable default via seek/write with pointer restore; backends
        with a native positional call should override.
        """
        pos = self.tell()
        try:
            self.seek(offset)
            return self.write(data)
        finally:
            self.seek(pos)

    def pread(self, offset: int, n: int) -> bytes:
        """Read up to ``n`` bytes at ``offset``; file pointer untouched."""
        pos = self.tell()
        try:
            self.seek(offset)
            return self.read(n)
        finally:
            self.seek(pos)

    # -- vectored I/O -------------------------------------------------------

    def pwritev(self, offset: int, views: Sequence[BufferLike]) -> int:
        """Gather-write ``views`` back to back starting at ``offset``.

        Returns total bytes written.  Default loops :meth:`pwrite`;
        backends with a native vectored call (``os.pwritev``) override.
        """
        total = 0
        for v in views:
            view = as_view(v)
            if view.nbytes:
                total += self.pwrite(offset + total, view)
        return total

    def preadv(self, offset: int, sizes: Sequence[int]) -> list[bytes]:
        """Scatter-read consecutive pieces of ``sizes`` starting at ``offset``.

        Returns one ``bytes`` per requested size.  Pieces shorten (and
        eventually empty) at end of file, mirroring ``read``.
        """
        out: list[bytes] = []
        pos = offset
        for size in sizes:
            if size < 0:
                raise ValueError(f"negative read size: {size}")
            piece = self.pread(pos, size) if size else b""
            out.append(piece)
            # Advance by the nominal size: a short piece means EOF, and
            # every later nominal offset lies beyond it (empty reads).
            pos += size
        return out

    def scatter_write(self, fragments: Iterable["tuple[int, BufferLike]"]) -> int:
        """Write a whole fragment list — ``(offset, data)`` pairs — at once.

        This is the single backend call a chunk-spanning ``fwrite`` or a
        coalesced flush issues per operation.  Fragments must be disjoint;
        physically contiguous runs are merged into one :meth:`pwritev`
        each.  Returns total bytes written.
        """
        frags = [(off, as_view(d)) for off, d in fragments]
        frags = [(off, v) for off, v in frags if v.nbytes]
        if not frags:
            return 0
        if len(frags) == 1:
            # Fast path for the overwhelmingly common small write: one
            # fragment needs no sorting or run merging.
            return self.pwrite(frags[0][0], frags[0][1])
        frags.sort(key=lambda f: f[0])
        total = 0
        i = 0
        while i < len(frags):
            run_off, view = frags[i]
            run = [view]
            end = run_off + view.nbytes
            i += 1
            while i < len(frags) and frags[i][0] == end:
                nxt = frags[i][1]
                run.append(nxt)
                end += nxt.nbytes
                i += 1
            total += self.pwritev(run_off, run)
        return total

    def gather_read(self, requests: Sequence["tuple[int, int]"]) -> list[bytes]:
        """Read a whole request list — ``(offset, size)`` pairs — at once.

        The read-side mirror of :meth:`scatter_write`: one backend call
        per chunk-spanning ``fread``.  Results come back in request
        order; contiguous runs collapse into one :meth:`preadv` each.
        """
        order = sorted(range(len(requests)), key=lambda k: requests[k][0])
        out: list[bytes] = [b""] * len(requests)
        i = 0
        while i < len(order):
            first = order[i]
            run_off, size = requests[first]
            run_idx = [first]
            run_sizes = [size]
            end = run_off + size
            i += 1
            while i < len(order):
                nxt_off, nxt_size = requests[order[i]]
                if nxt_off != end:
                    break
                run_idx.append(order[i])
                run_sizes.append(nxt_size)
                end += nxt_size
                i += 1
            pieces = self.preadv(run_off, run_sizes)
            for idx, piece in zip(run_idx, pieces):
                out[idx] = piece
        return out

    def __enter__(self) -> "RawFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class Backend(abc.ABC):
    """A place files live: the real FS or a simulated one."""

    @abc.abstractmethod
    def open(self, path: str, mode: str) -> RawFile:
        """Open ``path``; modes follow ``io.open`` binary conventions."""

    @abc.abstractmethod
    def exists(self, path: str) -> bool:
        """True if ``path`` exists."""

    @abc.abstractmethod
    def unlink(self, path: str) -> None:
        """Delete the file at ``path``."""

    @abc.abstractmethod
    def file_size(self, path: str) -> int:
        """Logical size of the file in bytes."""

    @abc.abstractmethod
    def stat_blocksize(self, path: str) -> int:
        """File-system block size governing alignment (paper: via fstat)."""

    @abc.abstractmethod
    def allocated_size(self, path: str) -> int:
        """Physically allocated bytes (for sparseness/defrag verification)."""

    def identity_token(self, path: str) -> tuple:
        """Cheap change-detection token for ``path`` (stat, not data reads).

        Two calls returning the same token mean the file content is
        unchanged with the fidelity the backend can offer; any mutation
        should change the token.  Caches (the read gateway's container
        table) use it as the close-to-open revalidation probe.  The
        default folds the sizes; real backends override with stronger
        signals (mtime/inode on the local FS, the mutation version in
        the simulator).
        """
        return (self.file_size(path), self.allocated_size(path))
