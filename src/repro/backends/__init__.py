"""Storage backends for the SION layer.

The SION multifile code is written against the small :class:`~repro.backends.base.Backend`
interface so the same layout/format logic runs on real POSIX files
(:class:`~repro.backends.localfs.LocalBackend`) and on the simulated
parallel file system (:class:`~repro.backends.simfs_backend.SimBackend`).
"""

from repro.backends.base import Backend, RawFile
from repro.backends.faults import FaultInjectingBackend, FaultPlan
from repro.backends.localfs import LocalBackend
from repro.backends.simfs_backend import SimBackend

__all__ = [
    "Backend",
    "RawFile",
    "LocalBackend",
    "SimBackend",
    "FaultInjectingBackend",
    "FaultPlan",
]
