"""Deterministic fault injection at the storage boundary.

Checkpoint I/O at scale fails in ways unit tests never exercise: a task
dies mid-write, an aggregated vectored write lands half of its
fragments, the collective close never persists metablock 2, a recovery
header is scribbled over.  :class:`FaultInjectingBackend` reproduces all
of these **deterministically** by wrapping any other backend (in the
spirit of :class:`~repro.backends.instrument.CountingBackend`) and
firing the faults scripted in a :class:`FaultPlan` at exact, replayable
trigger points:

* :meth:`FaultPlan.kill_rank` — rank ``k`` dies once its cumulative data
  traffic would exceed ``after_bytes``: the crossing call raises
  :class:`~repro.errors.FaultInjectedError` *without* moving bytes.
* :meth:`FaultPlan.tear_scatter` — a targeted ``scatter_write`` persists
  only its first ``keep_fragments`` fragments, then raises: a torn
  vectored write, the paper's motivating partial-checkpoint failure.
* :meth:`FaultPlan.drop_metablock2` — the streaming write carrying a
  metablock-2 payload for the targeted path is silently swallowed, as is
  everything after it on that handle: the writer "succeeds" but the file
  is left exactly as a crash-before-close leaves it (no exception — the
  recovery path, not the failure path, is under test).
* :meth:`FaultPlan.corrupt_chunk_header` — the shadow header of one
  ``(ltask, block)`` chunk is garbled on its way to the store, so the
  recovery scan finds a torn chain.

Triggers are keyed on *rank*, *path*, and *payload content* — never on
wall clock, call interleaving, or engine scheduling — so the same plan
fires identically under the ``threads``, ``bulk``, and ``proc`` SPMD
engines and under the bulk engine's memoized replay (a failed call is
not memoized; its re-execution re-raises the same fault).  Rank
attribution is explicit: an SPMD program calls :meth:`for_rank` with its
communicator rank and uses the returned view, which shares the plan
state with every sibling view.

The wrapper deliberately understands the SION wire magics
(:data:`~repro.sion.constants.MAGIC_MB2`,
:data:`~repro.sion.constants.MAGIC_SHADOW`) — it is a fault library
*for* the SION layer, and content-keyed triggers are what make the
plans independent of which open path (direct, collective, serial,
partitioned) produced the traffic.  ``repro.sion.constants`` imports
nothing, so no layering cycle arises.

The whole wrapper pickles whenever the inner backend does
(:class:`~repro.backends.localfs.LocalBackend` does;
:class:`~repro.backends.simfs_backend.SimBackend` refuses by design), so
plans run unchanged under the process engine.
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass
from typing import Sequence

from repro.backends.base import Backend, RawFile
from repro.buffers import BufferLike, as_view
from repro.errors import FaultInjectedError
from repro.sion.constants import MAGIC_MB2, MAGIC_SHADOW

#: Fault kinds a :class:`FaultSpec` can carry.
KILL_RANK = "kill_rank"
TEAR_SCATTER = "tear_scatter"
DROP_METABLOCK2 = "drop_metablock2"
CORRUPT_CHUNK_HEADER = "corrupt_chunk_header"

#: Leading fields of a shadow header: magic, ltask, block (see
#: ``repro.sion.format._SHADOW``; only the identifying prefix matters here).
_SHADOW_HEAD = struct.Struct("<8sII")


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault (see the :class:`FaultPlan` constructors).

    ``kind`` selects the trigger; the remaining fields are meaningful per
    kind: ``rank``/``after_bytes`` for :data:`KILL_RANK`,
    ``path``/``keep_fragments``/``rank`` for :data:`TEAR_SCATTER`,
    ``path`` for :data:`DROP_METABLOCK2`, and ``path``/``ltask``/``block``
    for :data:`CORRUPT_CHUNK_HEADER`.
    """

    kind: str
    rank: int | None = None
    after_bytes: int = 0
    path: str | None = None
    keep_fragments: int = 0
    ltask: int | None = None
    block: int | None = None


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, chainable script of faults.

    Each constructor returns a *new* plan with the fault appended, so
    plans compose without mutation::

        plan = (FaultPlan()
                .kill_rank(3, after_bytes=4096)
                .drop_metablock2(path="/scratch/out.sion"))
        backend = FaultInjectingBackend(SimBackend(fs), plan)

    An empty plan injects nothing — a :class:`FaultInjectingBackend`
    over it is a transparent pass-through.
    """

    faults: tuple[FaultSpec, ...] = ()

    def kill_rank(self, rank: int, after_bytes: int = 0) -> "FaultPlan":
        """Kill rank ``rank`` once its data traffic would exceed ``after_bytes``.

        "Traffic" is every payload byte moved through the rank's raw
        handles, reads and writes alike; the call that would cross the
        budget raises :class:`~repro.errors.FaultInjectedError` without
        moving anything (``after_bytes=0`` kills the first data call).
        Requires the program to attribute its handles via
        :meth:`FaultInjectingBackend.for_rank`.  In collective mode only
        collector ranks perform physical I/O, so target a collector
        (e.g. rank 0) for the fault to fire.
        """
        if rank < 0:
            raise ValueError(f"rank must be non-negative: {rank}")
        if after_bytes < 0:
            raise ValueError(f"after_bytes must be non-negative: {after_bytes}")
        return FaultPlan(
            self.faults
            + (FaultSpec(kind=KILL_RANK, rank=rank, after_bytes=after_bytes),)
        )

    def tear_scatter(
        self, path: str, keep_fragments: int = 0, rank: int | None = None
    ) -> "FaultPlan":
        """Tear a ``scatter_write`` against ``path`` mid-iovec.

        The first ``keep_fragments`` fragments are persisted, then the
        call raises — the on-store state is a genuinely torn vectored
        write.  ``rank`` (optional) restricts the trigger to one rank's
        handles; otherwise the first matching call tears, whichever rank
        issues it.
        """
        if keep_fragments < 0:
            raise ValueError(
                f"keep_fragments must be non-negative: {keep_fragments}"
            )
        return FaultPlan(
            self.faults
            + (
                FaultSpec(
                    kind=TEAR_SCATTER,
                    path=path,
                    keep_fragments=keep_fragments,
                    rank=rank,
                ),
            )
        )

    def drop_metablock2(self, path: str) -> "FaultPlan":
        """Silently drop metablock-2 persistence for ``path``.

        The streaming ``write`` whose payload opens with the metablock-2
        magic is swallowed, along with every later write and flush on
        that handle — modeling a writer that died during the close
        sequence after its barrier partners already believed it done.
        No exception is raised; the damage is only visible when the file
        is next opened (and is exactly what ``sionrecover`` repairs).
        """
        return FaultPlan(
            self.faults + (FaultSpec(kind=DROP_METABLOCK2, path=path),)
        )

    def corrupt_chunk_header(
        self, path: str, ltask: int, block: int
    ) -> "FaultPlan":
        """Garble the shadow header of chunk ``(ltask, block)`` in ``path``.

        The header is corrupted *in flight* (its magic is inverted), so
        it lands on the store undecodable: the recovery scan of that
        task's chunk chain stops at the damaged block, as it would after
        real corruption.  Payload bytes of the chunk are untouched.
        """
        return FaultPlan(
            self.faults
            + (
                FaultSpec(
                    kind=CORRUPT_CHUNK_HEADER, path=path, ltask=ltask, block=block
                ),
            )
        )

    def of_kind(self, kind: str) -> tuple[FaultSpec, ...]:
        """The plan's faults of one kind, in script order."""
        return tuple(f for f in self.faults if f.kind == kind)


class _FaultState:
    """Mutable trigger state shared by every view of one backend.

    Holds the per-rank cumulative traffic counters behind
    :meth:`FaultPlan.kill_rank`.  Pickles without its lock (the process
    engine serializes the backend before any traffic, so counters start
    at zero in every child — and kill budgets are rank-local, so a
    child's own counter is the authoritative one anyway).
    """

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.rank_bytes: dict[int, int] = {}

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.lock = threading.Lock()


class FaultingRawFile(RawFile):
    """Raw-file decorator firing the owner plan's faults; else forwards.

    Structure mirrors :class:`~repro.backends.instrument.CountingRawFile`:
    every protocol method forwards to the inner handle directly, so inner
    fan-out (a ``scatter_write`` decomposing into ``pwritev`` runs) never
    re-enters the trigger logic — faults key on boundary crossings by the
    SION layer, exactly like the instrumentation counts.
    """

    def __init__(self, inner: RawFile, owner: "FaultInjectingBackend", path: str):
        """Wrap ``inner`` (opened at ``path``) for ``owner``'s plan."""
        self._inner = inner
        self._owner = owner
        self._path = path
        self._swallowing = False

    # -- trigger helpers ----------------------------------------------------

    def _charge(self, nbytes: int) -> None:
        """Account ``nbytes`` of traffic against this rank's kill budget.

        Raises :class:`~repro.errors.FaultInjectedError` — before the
        inner call moves anything — when the charge would cross a
        :meth:`~FaultPlan.kill_rank` budget for this view's rank.
        """
        rank = self._owner.rank
        if rank is None:
            return
        kills = [
            f
            for f in self._owner.plan.of_kind(KILL_RANK)
            if f.rank == rank
        ]
        if not kills:
            return
        state = self._owner.state
        with state.lock:
            used = state.rank_bytes.get(rank, 0)
            for spec in kills:
                if used + nbytes > spec.after_bytes:
                    raise FaultInjectedError(
                        f"rank {rank} killed by fault plan: {used + nbytes} "
                        f"bytes of traffic would exceed the {spec.after_bytes}"
                        f"-byte budget ({self._path})"
                    )
            state.rank_bytes[rank] = used + nbytes

    def _matches_rank(self, spec: FaultSpec) -> bool:
        """True when ``spec`` targets this view's rank (or any rank)."""
        return spec.rank is None or spec.rank == self._owner.rank

    def _corrupted(self, data: BufferLike) -> BufferLike:
        """The payload with its shadow header garbled, if targeted."""
        specs = self._owner.plan.of_kind(CORRUPT_CHUNK_HEADER)
        if not specs:
            return data
        view = as_view(data)
        if view.nbytes < _SHADOW_HEAD.size:
            return data
        magic, ltask, block = _SHADOW_HEAD.unpack_from(view, 0)
        if magic != MAGIC_SHADOW:
            return data
        for spec in specs:
            if spec.path == self._path and spec.ltask == ltask and spec.block == block:
                # Invert the magic: ShadowHeader.decode returns None, so
                # the chain scan stops here — a torn chain, not a crash.
                garbled = bytearray(view.tobytes())
                for i in range(len(magic)):
                    garbled[i] ^= 0xFF
                return bytes(garbled)
        return data

    def _is_metablock2(self, data: BufferLike) -> bool:
        """True when ``data`` opens with the metablock-2 magic."""
        view = as_view(data)
        if view.nbytes < len(MAGIC_MB2):
            return False
        return bytes(view[: len(MAGIC_MB2)]) == MAGIC_MB2

    def _should_drop(self, data: BufferLike) -> bool:
        """True when this write starts (or continues) an mb2 blackout."""
        if self._swallowing:
            return True
        for spec in self._owner.plan.of_kind(DROP_METABLOCK2):
            if spec.path == self._path and self._is_metablock2(data):
                self._swallowing = True
                return True
        return False

    # -- streaming surface --------------------------------------------------

    def seek(self, offset: int, whence: int = 0) -> int:
        """Forward ``seek`` (swallowed during an mb2 blackout)."""
        if self._swallowing:
            return offset
        return self._inner.seek(offset, whence)

    def tell(self) -> int:
        """Forward ``tell``."""
        return self._inner.tell()

    def read(self, n: int = -1) -> bytes:
        """Forward ``read``, charging the returned bytes to the kill budget."""
        self._charge(0)
        out = self._inner.read(n)
        self._charge(len(out))
        return out

    def write(self, data: BufferLike) -> int:
        """Forward ``write``; the drop-mb2 and kill triggers fire here."""
        if self._should_drop(data):
            return as_view(data).nbytes
        self._charge(as_view(data).nbytes)
        return self._inner.write(data)

    def write_zeros(self, n: int) -> int:
        """Forward ``write_zeros`` (swallowed during an mb2 blackout)."""
        if self._swallowing:
            return n
        self._charge(n)
        return self._inner.write_zeros(n)

    def truncate(self, size: int) -> None:
        """Forward ``truncate`` (swallowed during an mb2 blackout)."""
        if self._swallowing:
            return
        self._inner.truncate(size)

    def flush(self) -> None:
        """Forward ``flush`` (swallowed during an mb2 blackout)."""
        if self._swallowing:
            return
        self._inner.flush()

    def close(self) -> None:
        """Forward ``close`` (always reaches the store)."""
        self._inner.close()

    # -- positioned / vectored surface --------------------------------------

    def pwrite(self, offset: int, data: BufferLike) -> int:
        """Forward ``pwrite``; kill and corrupt-header triggers fire here."""
        if self._swallowing:
            return as_view(data).nbytes
        self._charge(as_view(data).nbytes)
        return self._inner.pwrite(offset, self._corrupted(data))

    def pread(self, offset: int, n: int) -> bytes:
        """Forward ``pread``, charging ``n`` to the kill budget first."""
        self._charge(n)
        return self._inner.pread(offset, n)

    def pwritev(self, offset: int, views: Sequence[BufferLike]) -> int:
        """Forward ``pwritev``; kill and corrupt-header triggers fire here."""
        views = list(views)
        if self._swallowing:
            return sum(as_view(v).nbytes for v in views)
        self._charge(sum(as_view(v).nbytes for v in views))
        return self._inner.pwritev(offset, [self._corrupted(v) for v in views])

    def preadv(self, offset: int, sizes: Sequence[int]) -> list[bytes]:
        """Forward ``preadv``, charging the request total first."""
        self._charge(sum(sizes))
        return self._inner.preadv(offset, sizes)

    def scatter_write(self, fragments) -> int:
        """Forward ``scatter_write``; every write-side trigger fires here."""
        frags = list(fragments)
        if self._swallowing:
            return sum(as_view(d).nbytes for _, d in frags)
        self._charge(sum(as_view(d).nbytes for _, d in frags))
        for spec in self._owner.plan.of_kind(TEAR_SCATTER):
            if spec.path == self._path and self._matches_rank(spec):
                kept = frags[: spec.keep_fragments]
                if kept:
                    self._inner.scatter_write(
                        [(off, self._corrupted(d)) for off, d in kept]
                    )
                raise FaultInjectedError(
                    f"scatter_write against {self._path} torn after "
                    f"{len(kept)} of {len(frags)} fragments"
                )
        return self._inner.scatter_write(
            [(off, self._corrupted(d)) for off, d in frags]
        )

    def gather_read(self, requests: Sequence[tuple[int, int]]) -> list[bytes]:
        """Forward ``gather_read``, charging the request total first."""
        self._charge(sum(n for _, n in requests))
        return self._inner.gather_read(requests)


class FaultInjectingBackend(Backend):
    """Backend decorator executing a :class:`FaultPlan` deterministically.

    All views created by :meth:`for_rank` share the same inner backend,
    plan, and trigger state; handles opened through an *unattributed*
    view (``rank=None``) never fire rank-keyed kills but still fire the
    path- and content-keyed faults.
    """

    def __init__(
        self,
        inner: Backend,
        plan: FaultPlan | None = None,
        *,
        rank: int | None = None,
        state: _FaultState | None = None,
    ) -> None:
        """Wrap ``inner`` with ``plan`` (``None`` = the empty plan)."""
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan()
        self.rank = rank
        self.state = state if state is not None else _FaultState()

    def for_rank(self, rank: int) -> "FaultInjectingBackend":
        """A view of this backend attributing its handles to ``rank``.

        SPMD programs call ``backend.for_rank(comm.rank)`` and open
        through the view; rank-keyed faults then fire on the right rank
        under every engine, without the engines knowing about faults.
        """
        return FaultInjectingBackend(
            self.inner, self.plan, rank=rank, state=self.state
        )

    def open(self, path: str, mode: str) -> FaultingRawFile:
        """Open ``path`` on the inner backend and arm the plan's triggers."""
        return FaultingRawFile(self.inner.open(path, mode), self, path)

    def exists(self, path: str) -> bool:
        """Forward ``exists``."""
        return self.inner.exists(path)

    def unlink(self, path: str) -> None:
        """Forward ``unlink``."""
        self.inner.unlink(path)

    def file_size(self, path: str) -> int:
        """Forward ``file_size``."""
        return self.inner.file_size(path)

    def stat_blocksize(self, path: str) -> int:
        """Forward ``stat_blocksize``."""
        return self.inner.stat_blocksize(path)

    def allocated_size(self, path: str) -> int:
        """Forward ``allocated_size``."""
        return self.inner.allocated_size(path)

    def identity_token(self, path: str) -> tuple:
        """Forward ``identity_token``."""
        return self.inner.identity_token(path)
