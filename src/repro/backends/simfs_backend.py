"""Backend adapter over the simulated file system (:class:`repro.fs.SimFS`).

Lets the complete SION stack — format, layout, parallel and serial APIs,
command-line tools — run unmodified against the in-memory simulator, with
every operation advancing the simulator's virtual clock.
"""

from __future__ import annotations

from repro.backends.base import Backend, RawFile
from repro.fs.simfs import SimFS, SimFileHandle


class SimRawFile(RawFile):
    """Adapter from :class:`SimFileHandle` to the backend interface."""

    def __init__(self, handle: SimFileHandle) -> None:
        self._h = handle

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._h.seek(offset, whence)

    def tell(self) -> int:
        return self._h.tell()

    def read(self, n: int = -1) -> bytes:
        return self._h.read(n)

    def write(self, data: bytes) -> int:
        return self._h.write(data)

    def write_zeros(self, n: int) -> int:
        return self._h.write_zeros(n)

    # Positioned / vectored calls map 1:1 onto the handle's native ones, so
    # one scatter/gather run costs one simulated data operation.

    def pwrite(self, offset: int, data) -> int:
        return self._h.pwrite(offset, data)

    def pread(self, offset: int, n: int) -> bytes:
        return self._h.pread(offset, n)

    def pwritev(self, offset: int, views) -> int:
        return self._h.pwritev(offset, views)

    def preadv(self, offset: int, sizes) -> list[bytes]:
        return self._h.preadv(offset, sizes)

    def truncate(self, size: int) -> None:
        self._h.truncate(size)

    def flush(self) -> None:
        self._h.flush()

    def close(self) -> None:
        self._h.close()


class SimBackend(Backend):
    """Backend view of one :class:`SimFS` instance.

    **In-process only.**  The simulated store is plain Python state; a
    child process (``run_spmd(..., engine="proc")``) would get an
    independent copy — under ``fork`` a copy-on-write snapshot, under
    ``spawn`` a pickled clone — and every cross-rank write would silently
    vanish at join.  Pickling therefore refuses loudly.  Use
    :class:`~repro.backends.localfs.LocalBackend` with the process
    engine, or keep SimBackend programs on the thread/bulk engines.
    """

    def __init__(self, fs: SimFS | None = None) -> None:
        self.fs = fs if fs is not None else SimFS()

    def __reduce__(self):
        raise TypeError(
            "SimBackend is in-process-only and cannot cross process "
            "boundaries: each child would mutate an invisible copy of the "
            "simulated store.  Use LocalBackend with engine='proc', or run "
            "SimBackend programs on the thread/bulk engines."
        )

    def open(self, path: str, mode: str) -> SimRawFile:
        return SimRawFile(self.fs.open(path, mode))

    def exists(self, path: str) -> bool:
        return self.fs.exists(path)

    def unlink(self, path: str) -> None:
        self.fs.unlink(path)

    def file_size(self, path: str) -> int:
        return self.fs.stat(path).st_size

    def stat_blocksize(self, path: str) -> int:
        probe = path if self.fs.exists(path) else "/"
        return self.fs.stat(probe).st_blksize

    def allocated_size(self, path: str) -> int:
        return self.fs.stat(path).allocated_bytes

    def identity_token(self, path: str) -> tuple:
        """Size plus the simulator's exact mutation version."""
        st = self.fs.stat(path)
        return (st.st_size, st.version)
