"""Backend over the real (POSIX) file system."""

from __future__ import annotations

import os

from repro.backends.base import Backend, RawFile


class LocalRawFile(RawFile):
    """Thin adapter around a builtin binary file object."""

    def __init__(self, fobj) -> None:
        self._f = fobj

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._f.seek(offset, whence)

    def tell(self) -> int:
        return self._f.tell()

    def read(self, n: int = -1) -> bytes:
        return self._f.read(n)

    def write(self, data: bytes) -> int:
        return self._f.write(data)

    def write_zeros(self, n: int) -> int:
        # Seek forward and truncate up: leaves a hole on sparse-capable
        # file systems instead of writing n zero bytes.
        if n < 0:
            raise ValueError("negative zero-extension")
        pos = self._f.seek(n, os.SEEK_CUR)
        end = self._f.seek(0, os.SEEK_END)
        if pos > end:
            self._f.truncate(pos)
        self._f.seek(pos)
        return n

    def truncate(self, size: int) -> None:
        self._f.truncate(size)

    def flush(self) -> None:
        self._f.flush()

    def close(self) -> None:
        self._f.close()


class LocalBackend(Backend):
    """Real files; block size from ``statvfs`` unless overridden.

    ``blocksize_override`` pins the alignment granularity, which tests use
    to get deterministic layouts regardless of the host file system.
    """

    def __init__(self, blocksize_override: int | None = None) -> None:
        if blocksize_override is not None and blocksize_override < 1:
            raise ValueError("blocksize_override must be positive")
        self.blocksize_override = blocksize_override

    def open(self, path: str, mode: str) -> LocalRawFile:
        if "b" not in mode:
            mode += "b"
        return LocalRawFile(open(path, mode))

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def unlink(self, path: str) -> None:
        os.unlink(path)

    def file_size(self, path: str) -> int:
        return os.stat(path).st_size

    def stat_blocksize(self, path: str) -> int:
        if self.blocksize_override is not None:
            return self.blocksize_override
        probe = path if os.path.exists(path) else (os.path.dirname(path) or ".")
        try:
            return os.statvfs(probe).f_bsize or 4096
        except OSError:
            return 4096

    def allocated_size(self, path: str) -> int:
        st = os.stat(path)
        # st_blocks counts 512-byte sectors on Linux.
        return getattr(st, "st_blocks", 0) * 512
