"""Backend over the real (POSIX) file system.

Files are opened *unbuffered* (raw ``FileIO``): the chunk engine issues
positioned and vectored calls (``os.pwrite``/``os.pwritev``/…) directly
against the file descriptor, and a user-space buffer in between would
have to be flushed and invalidated around every one of them to stay
coherent.  Partial reads/writes — legal for raw files — are completed by
looping, so callers keep the all-or-nothing semantics the buffered layer
used to provide.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.backends.base import Backend, RawFile
from repro.buffers import BufferLike, as_view

#: POSIX caps one writev/readv at IOV_MAX iovecs; use the platform's
#: actual bound (Linux: 1024) rather than assuming it.
try:
    _IOV_MAX = os.sysconf("SC_IOV_MAX")
    if _IOV_MAX <= 0:
        _IOV_MAX = 1024
except (AttributeError, OSError, ValueError):  # pragma: no cover - exotic hosts
    _IOV_MAX = 1024

_HAVE_PWRITEV = hasattr(os, "pwritev")
_HAVE_PREADV = hasattr(os, "preadv")


class LocalRawFile(RawFile):
    """Adapter around an unbuffered binary file object.

    Open handles are **picklable** (a requirement of the process SPMD
    engine): the pickle records the path, an equivalent reopen mode, and
    the file position, and unpickling reopens the file and seeks back.
    Create/truncate modes (``w``/``x``) are rewritten to ``r+`` for the
    reopen — the file already exists by pickle time, and a child process
    re-truncating the parent's file would destroy data.  The two handles
    are then independent descriptors on the same file, exactly like a
    ``dup``'d fd with a private offset.
    """

    def __init__(self, fobj) -> None:
        self._f = fobj

    def __getstate__(self) -> dict:
        f = self._f
        if f.closed:
            raise TypeError("cannot pickle a closed LocalRawFile")
        path = getattr(f, "name", None)
        if not isinstance(path, (str, bytes, os.PathLike)):
            raise TypeError(
                "cannot pickle a LocalRawFile without a filesystem path "
                f"(name={path!r}); open it by path to make it portable"
            )
        mode = getattr(f, "mode", "rb")
        if "w" in mode or "x" in mode:
            reopen = "r+b"
        elif "b" not in mode:  # pragma: no cover - FileIO modes carry 'b'
            reopen = mode + "b"
        else:
            reopen = mode
        return {"path": os.fspath(path), "mode": reopen, "pos": f.tell()}

    def __setstate__(self, state: dict) -> None:
        self._f = open(state["path"], state["mode"], buffering=0)
        self._f.seek(state["pos"])

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._f.seek(offset, whence)

    def tell(self) -> int:
        return self._f.tell()

    def read(self, n: int = -1) -> bytes:
        if n is None or n < 0:
            return self._f.readall()
        parts: list[bytes] = []
        remaining = n
        while remaining > 0:
            piece = self._f.read(remaining)
            if not piece:
                break
            parts.append(piece)
            remaining -= len(piece)
        if len(parts) == 1:
            return parts[0]
        return b"".join(parts)

    def write(self, data: BufferLike) -> int:
        view = as_view(data)
        total = view.nbytes
        done = self._f.write(view)
        while done < total:  # pragma: no cover - raw partial writes are rare
            done += self._f.write(view[done:])
        return total

    def write_zeros(self, n: int) -> int:
        # Seek forward and truncate up: leaves a hole on sparse-capable
        # file systems instead of writing n zero bytes.
        if n < 0:
            raise ValueError("negative zero-extension")
        pos = self._f.seek(n, os.SEEK_CUR)
        end = self._f.seek(0, os.SEEK_END)
        if pos > end:
            self._f.truncate(pos)
        self._f.seek(pos)
        return n

    def truncate(self, size: int) -> None:
        self._f.truncate(size)

    def flush(self) -> None:
        self._f.flush()

    def close(self) -> None:
        self._f.close()

    # -- positioned / vectored (native) ------------------------------------

    def pwrite(self, offset: int, data: BufferLike) -> int:
        view = as_view(data)
        fd = self._f.fileno()
        total = view.nbytes
        done = os.pwrite(fd, view, offset)
        while done < total:  # pragma: no cover - raw partial writes are rare
            done += os.pwrite(fd, view[done:], offset + done)
        return total

    def pread(self, offset: int, n: int) -> bytes:
        if n < 0:
            raise ValueError(f"negative read size: {n}")
        fd = self._f.fileno()
        parts: list[bytes] = []
        remaining = n
        while remaining > 0:
            piece = os.pread(fd, remaining, offset)
            if not piece:
                break
            parts.append(piece)
            offset += len(piece)
            remaining -= len(piece)
        if len(parts) == 1:
            return parts[0]
        return b"".join(parts)

    def pwritev(self, offset: int, views: Sequence[BufferLike]) -> int:
        vs = [v for v in (as_view(x) for x in views) if v.nbytes]
        if not vs:
            return 0
        if not _HAVE_PWRITEV:  # pragma: no cover - exercised on exotic hosts
            return super().pwritev(offset, vs)
        fd = self._f.fileno()
        total = 0
        for start in range(0, len(vs), _IOV_MAX):
            batch = vs[start : start + _IOV_MAX]
            need = sum(v.nbytes for v in batch)
            done = os.pwritev(fd, batch, offset + total)
            if done < need:  # pragma: no cover - partial vectored write
                acc = 0
                for v in batch:
                    if acc + v.nbytes > done:
                        cut = max(done - acc, 0)
                        self.pwrite(offset + total + acc + cut, v[cut:])
                    acc += v.nbytes
            total += need
        return total

    def preadv(self, offset: int, sizes: Sequence[int]) -> list[bytes]:
        sizes = [int(s) for s in sizes]
        if any(s < 0 for s in sizes):
            raise ValueError("read sizes must be non-negative")
        if not _HAVE_PREADV:  # pragma: no cover - exercised on exotic hosts
            return super().preadv(offset, sizes)
        fd = self._f.fileno()
        out: list[bytes] = [b""] * len(sizes)
        pos = offset
        idx = 0
        while idx < len(sizes):
            batch_idx = [
                i for i in range(idx, min(idx + _IOV_MAX, len(sizes))) if sizes[i] > 0
            ]
            batch_end = min(idx + _IOV_MAX, len(sizes))
            if batch_idx:
                bufs = [bytearray(sizes[i]) for i in batch_idx]
                need = sum(len(b) for b in bufs)
                got = os.preadv(fd, bufs, pos)
                if got < need and self.pread(pos + got, 1):
                    # A short read that is *not* EOF (signal interruption):
                    # retake this batch with the loop-until-done scalar path.
                    for i in batch_idx:
                        out[i] = self.pread(pos, sizes[i])
                        pos += sizes[i]
                    idx = batch_end
                    continue
                # Trim at EOF: buffers past ``got`` shrink, then empty.
                acc = 0
                for i, buf in zip(batch_idx, bufs):
                    take = max(0, min(len(buf), got - acc))
                    out[i] = bytes(buf[:take])
                    acc += len(buf)
                pos += need
            idx = batch_end
        return out


class LocalBackend(Backend):
    """Real files; block size from ``statvfs`` unless overridden.

    ``blocksize_override`` pins the alignment granularity, which tests use
    to get deterministic layouts regardless of the host file system.
    """

    def __init__(self, blocksize_override: int | None = None) -> None:
        if blocksize_override is not None and blocksize_override < 1:
            raise ValueError("blocksize_override must be positive")
        self.blocksize_override = blocksize_override

    def open(self, path: str, mode: str) -> LocalRawFile:
        if "b" not in mode:
            mode += "b"
        # buffering=0: the vectored fd-level calls stay coherent with the
        # streaming ones without flush/invalidate gymnastics.
        return LocalRawFile(open(path, mode, buffering=0))

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def unlink(self, path: str) -> None:
        os.unlink(path)

    def file_size(self, path: str) -> int:
        return os.stat(path).st_size

    def stat_blocksize(self, path: str) -> int:
        if self.blocksize_override is not None:
            return self.blocksize_override
        probe = path if os.path.exists(path) else (os.path.dirname(path) or ".")
        try:
            return os.statvfs(probe).f_bsize or 4096
        except OSError:
            return 4096

    def allocated_size(self, path: str) -> int:
        st = os.stat(path)
        # st_blocks counts 512-byte sectors on Linux.
        return getattr(st, "st_blocks", 0) * 512

    def identity_token(self, path: str) -> tuple:
        """Inode identity, nanosecond mtime, and size — one stat call."""
        st = os.stat(path)
        return (st.st_ino, st.st_mtime_ns, st.st_size)
