"""Read-through caching adapter over any backend file handle.

:class:`CachingRawFile` wraps a backend :class:`~repro.backends.base.RawFile`
and serves the positioned and vectored read calls block-granularly
through a shared :class:`~repro.fs.cache.ChunkCache` — the real half of
the paper's client-side caching story (Fig. 5b): a warm working set
never reaches the store.  The wrapper is read-only by design; the read
gateway in :mod:`repro.serve` uses it to serve *sealed* containers.
"""

from __future__ import annotations

from typing import Sequence

from repro.backends.base import RawFile
from repro.buffers import BufferLike
from repro.errors import ReproError
from repro.fs.cache import ChunkCache


class CachingRawFile(RawFile):
    """Read-through cache wrapper around a backend file handle.

    Positioned and vectored reads (``pread``/``preadv``/``gather_read``)
    are split at ``cache.block_size`` boundaries; resident blocks are
    served from the shared :class:`ChunkCache` and the missing ones are
    fetched from the wrapped handle in **one** vectored ``gather_read``
    per call, then inserted.  Streaming reads (used only for metablock
    decoding at container open) pass through untouched, as do
    ``seek``/``tell``.

    The wrapper is read-only by design — the gateway serves *sealed*
    containers — so every write-side call raises
    :class:`~repro.errors.ReproError`.  A short or empty block (EOF) is
    cached like any other content: the file is immutable for the
    lifetime of its generation tag, so EOF is stable too.
    """

    def __init__(self, inner: RawFile, cache: ChunkCache, generation: object, path: str) -> None:
        """Wrap ``inner``; cache entries are keyed on ``generation``/``path``."""
        self._inner = inner
        self._cache = cache
        self._gen = generation
        self._path = path
        self._bs = cache.block_size

    # -- streaming surface (metadata decode only) ---------------------------

    def seek(self, offset: int, whence: int = 0) -> int:
        """Delegate to the wrapped handle (metadata decode path)."""
        return self._inner.seek(offset, whence)

    def tell(self) -> int:
        """Delegate to the wrapped handle."""
        return self._inner.tell()

    def read(self, n: int = -1) -> bytes:
        """Delegate to the wrapped handle (metadata decode path)."""
        return self._inner.read(n)

    def flush(self) -> None:
        """No-op for a read-only handle."""

    def close(self) -> None:
        """Close the wrapped handle (cached blocks stay resident)."""
        self._inner.close()

    # -- write surface: sealed containers are read-only ---------------------

    def write(self, data: BufferLike) -> int:
        """Reject writes: the gateway serves sealed containers."""
        raise ReproError("CachingRawFile is read-only (sealed container)")

    def write_zeros(self, n: int) -> int:
        """Reject writes: the gateway serves sealed containers."""
        raise ReproError("CachingRawFile is read-only (sealed container)")

    def truncate(self, size: int) -> None:
        """Reject writes: the gateway serves sealed containers."""
        raise ReproError("CachingRawFile is read-only (sealed container)")

    def pwrite(self, offset: int, data: BufferLike) -> int:
        """Reject writes: the gateway serves sealed containers."""
        raise ReproError("CachingRawFile is read-only (sealed container)")

    def pwritev(self, offset: int, views: Sequence[BufferLike]) -> int:
        """Reject writes: the gateway serves sealed containers."""
        raise ReproError("CachingRawFile is read-only (sealed container)")

    def scatter_write(self, fragments) -> int:
        """Reject writes: the gateway serves sealed containers."""
        raise ReproError("CachingRawFile is read-only (sealed container)")

    # -- cached read surface -------------------------------------------------

    def pread(self, offset: int, n: int) -> bytes:
        """Positioned read served block-granularly through the cache."""
        return self.gather_read([(offset, n)])[0]

    def preadv(self, offset: int, sizes: Sequence[int]) -> list[bytes]:
        """Consecutive scatter-read through the cache (one fetch wave)."""
        requests = []
        pos = offset
        for size in sizes:
            if size < 0:
                raise ValueError(f"negative read size: {size}")
            requests.append((pos, size))
            pos += size
        return self.gather_read(requests)

    def gather_read(self, requests: Sequence["tuple[int, int]"]) -> list[bytes]:
        """Vectored read: resident blocks hit, misses fetched in one call.

        The complete miss list across all requests goes to the wrapped
        handle as a single ``gather_read`` — a cold cache costs exactly
        one backend call per vectored read, a warm one costs zero.
        """
        bs = self._bs
        blocks: dict[int, "bytes | None"] = {}
        for off, size in requests:
            if size <= 0:
                continue
            for b in range(off // bs, (off + size - 1) // bs + 1):
                if b not in blocks:
                    blocks[b] = self._cache.get((self._gen, self._path, b))
        missing = sorted(b for b, v in blocks.items() if v is None)
        if missing:
            pieces = self._inner.gather_read([(b * bs, bs) for b in missing])
            for b, piece in zip(missing, pieces):
                blocks[b] = piece
                self._cache.put((self._gen, self._path, b), piece)
        out: list[bytes] = []
        for off, size in requests:
            out.append(self._assemble(blocks, off, size))
        return out

    def _assemble(self, blocks: dict, offset: int, size: int) -> bytes:
        """Stitch one request's bytes out of its covering blocks.

        A block shorter than the span it should cover means EOF fell
        inside it; the result shortens exactly like a direct backend
        read would.
        """
        if size <= 0:
            return b""
        bs = self._bs
        parts: list[bytes] = []
        pos = offset
        end = offset + size
        while pos < end:
            b = pos // bs
            data = blocks[b]
            lo = pos - b * bs
            hi = min(end - b * bs, bs)
            piece = data[lo:hi]
            parts.append(piece)
            if len(piece) < hi - lo:  # EOF inside this block
                break
            pos = b * bs + hi
        return b"".join(parts)
