"""Instrumented backend wrapper: counts calls, fragments, and copies.

:class:`CountingBackend` wraps any other backend and records, at the
``RawFile`` protocol boundary, exactly what the SION layer asked the
store to do:

* **backend calls** per method (``write``, ``pwrite``, ``scatter_write``,
  ``seek``, …) — proving that a chunk-spanning ``fwrite`` of N fragments
  crosses the boundary *once* (one ``scatter_write``), not N times;
* **fragments** — individual payload buffers carried by those calls;
* **copies** — fragments whose memory is *not* part of a tracked source
  payload.  :meth:`CountingBackend.track_source` registers the
  application buffer about to be written; every arriving fragment is
  attributed by walking ``memoryview(...).obj`` back to its exporting
  object (slices, casts, and re-wraps all preserve it), so a fragment
  that still lives inside the caller's buffer counts as zero-copy and
  anything that was materialized on the way down counts as a copy.

The wrapper stores only scalar telemetry — it never retains views of the
payloads, so upstream ``bytearray`` buffers remain resizable.
"""

from __future__ import annotations

import threading
import uuid
import weakref
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.backends.base import Backend, RawFile
from repro.buffers import BufferLike

#: RawFile methods that deliver payload bytes to the store.
DATA_WRITE_METHODS = ("write", "pwrite", "pwritev", "scatter_write")

#: RawFile methods that fetch payload bytes from the store.
DATA_READ_METHODS = ("read", "pread", "preadv", "gather_read")

#: Every live :class:`IOStats` in this process, by token.  The process
#: SPMD engine snapshots this registry around a rank body and ships the
#: counter *deltas* back to the parent, where :func:`apply_stats_deltas`
#: folds them into the parent's objects — so ``CountingBackend``
#: telemetry aggregates across processes the same way it does across
#: threads.  Weak values: registration must not keep stats (and the
#: backends holding them) alive.
_LIVE_STATS: "weakref.WeakValueDictionary[str, IOStats]" = (
    weakref.WeakValueDictionary()
)

#: Scalar counter fields carried by cross-process deltas.
_COUNTER_FIELDS = (
    "bytes_written",
    "bytes_read",
    "fragments_written",
    "fragments_read",
    "tracked_fragments",
    "copied_fragments",
)


@dataclass
class IOStats:
    """Telemetry shared by every handle of one :class:`CountingBackend`.

    Mutations take a lock: the parallel scenarios drive concurrent task
    threads into one shared stats object, and an unlocked read-modify-
    write would lose updates — turning the "deterministic counts" promise
    into a silent undercount.
    """

    calls: dict[str, int] = field(default_factory=dict)
    bytes_written: int = 0
    bytes_read: int = 0
    fragments_written: int = 0
    fragments_read: int = 0
    tracked_fragments: int = 0
    copied_fragments: int = 0
    #: Stable cross-process identity: a child's counter deltas find the
    #: parent's object by this token after the run joins.
    token: str = field(default_factory=lambda: uuid.uuid4().hex)
    _sources: set[int] = field(default_factory=set)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        _LIVE_STATS[self.token] = self

    def __getstate__(self) -> dict:
        """Picklable state: everything but the lock.

        ``_sources`` travels along but is only meaningful in-process
        (it holds ``id()`` values); cross-process zero-copy attribution
        is per-child and merged via the counter deltas.
        """
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        # Register only if the token is not already live: when a clone is
        # unpickled in the *same* process (or a spawn child that already
        # holds the original), the existing object stays authoritative —
        # deltas must merge into it, not into the latest copy.
        _LIVE_STATS.setdefault(self.token, self)

    def raw_state(self) -> dict:
        """Copy of the mergeable counters (atomic)."""
        with self._lock:
            out: dict = {"calls": dict(self.calls)}
            for name in _COUNTER_FIELDS:
                out[name] = getattr(self, name)
            return out

    def merge_raw(self, delta: dict) -> None:
        """Fold another process's counter delta into this object."""
        with self._lock:
            for method, n in delta.get("calls", {}).items():
                self.calls[method] = self.calls.get(method, 0) + n
            for name in _COUNTER_FIELDS:
                setattr(self, name, getattr(self, name) + delta.get(name, 0))

    def count(self, method: str, n: int = 1) -> None:
        with self._lock:
            self.calls[method] = self.calls.get(method, 0) + n

    def count_read_bytes(self, n: int, requests: int = 1) -> None:
        with self._lock:
            self.bytes_read += n
            self.fragments_read += requests

    @property
    def data_write_calls(self) -> int:
        """Boundary crossings that carried payload toward the store."""
        return sum(self.calls.get(m, 0) for m in DATA_WRITE_METHODS)

    @property
    def data_read_calls(self) -> int:
        """Boundary crossings that fetched payload from the store."""
        return sum(self.calls.get(m, 0) for m in DATA_READ_METHODS)

    @property
    def seeks(self) -> int:
        return self.calls.get("seek", 0)

    @property
    def opens(self) -> int:
        """Handles opened against the backend (collective mode: per
        collector plus the metadata masters, not per task)."""
        return self.calls.get("open", 0)

    def track_source(self, payload: object) -> None:
        """Register an application buffer; fragments are attributed to it.

        Tracks the *base exporter*: pass the ``bytes``/``bytearray``/array
        object itself (or a memoryview of it — the underlying exporter is
        registered either way).
        """
        base = payload.obj if isinstance(payload, memoryview) else payload
        with self._lock:
            self._sources.add(id(base))

    def clear_sources(self) -> None:
        with self._lock:
            self._sources.clear()

    def note_payloads(self, bufs: Iterable[BufferLike]) -> int:
        """Record the fragments of one write-side call; returns their size."""
        total = 0
        fragments = tracked = copied = 0
        with self._lock:
            for buf in bufs:
                view = buf if isinstance(buf, memoryview) else memoryview(buf)
                total += view.nbytes
                fragments += 1
                if self._sources:
                    tracked += 1
                    if id(view.obj) not in self._sources:
                        copied += 1
                if view is not buf:
                    view.release()
            self.fragments_written += fragments
            self.tracked_fragments += tracked
            self.copied_fragments += copied
            self.bytes_written += total
        return total

    def snapshot(self) -> dict[str, int]:
        """Plain-dict summary (for metrics and assertions); atomic."""
        with self._lock:
            return {
                "data_write_calls": self.data_write_calls,
                "data_read_calls": self.data_read_calls,
                "seeks": self.seeks,
                "opens": self.opens,
                "fragments_written": self.fragments_written,
                "fragments_read": self.fragments_read,
                "tracked_fragments": self.tracked_fragments,
                "copied_fragments": self.copied_fragments,
                "bytes_written": self.bytes_written,
                "bytes_read": self.bytes_read,
            }


def snapshot_live_stats() -> dict[str, dict]:
    """Raw counter state of every live :class:`IOStats`, by token."""
    return {token: stats.raw_state() for token, stats in list(_LIVE_STATS.items())}


def stats_deltas(
    before: dict[str, dict], after: dict[str, dict]
) -> list[tuple[str, dict]]:
    """Non-zero per-token counter deltas between two snapshots.

    Tokens present only in ``after`` (stats created inside the child)
    contribute their full state; tokens that vanished are dropped — the
    parent has no object to merge them into anyway.
    """
    out: list[tuple[str, dict]] = []
    for token, state in after.items():
        base = before.get(token, {})
        base_calls = base.get("calls", {})
        delta: dict = {
            "calls": {
                m: n - base_calls.get(m, 0)
                for m, n in state["calls"].items()
                if n - base_calls.get(m, 0)
            }
        }
        for name in _COUNTER_FIELDS:
            d = state[name] - base.get(name, 0)
            if d:
                delta[name] = d
        if delta["calls"] or len(delta) > 1:
            out.append((token, delta))
    return out


def apply_stats_deltas(deltas: Iterable[tuple[str, dict]]) -> None:
    """Merge per-token deltas into this process's live stats objects.

    Deltas whose token has no live counterpart here are ignored: the
    child created (and discarded) that backend wrapper itself.
    """
    for token, delta in deltas:
        stats = _LIVE_STATS.get(token)
        if stats is not None:
            stats.merge_raw(delta)


class CountingRawFile(RawFile):
    """Counts every protocol call, then delegates to the wrapped handle.

    Every method forwards to the *inner* file directly, so an inner
    ``scatter_write`` that fans out into ``pwritev`` runs does not
    re-enter this wrapper: the counts measure boundary crossings by the
    SION layer, not backend internals.
    """

    def __init__(self, inner: RawFile, stats: IOStats) -> None:
        self._inner = inner
        self.stats = stats

    # -- streaming ---------------------------------------------------------

    def seek(self, offset: int, whence: int = 0) -> int:
        self.stats.count("seek")
        return self._inner.seek(offset, whence)

    def tell(self) -> int:
        self.stats.count("tell")
        return self._inner.tell()

    def read(self, n: int = -1) -> bytes:
        self.stats.count("read")
        out = self._inner.read(n)
        self.stats.count_read_bytes(len(out))
        return out

    def write(self, data: BufferLike) -> int:
        self.stats.count("write")
        self.stats.note_payloads([data])
        return self._inner.write(data)

    def write_zeros(self, n: int) -> int:
        self.stats.count("write_zeros")
        return self._inner.write_zeros(n)

    def truncate(self, size: int) -> None:
        self.stats.count("truncate")
        self._inner.truncate(size)

    def flush(self) -> None:
        self.stats.count("flush")
        self._inner.flush()

    def close(self) -> None:
        self.stats.count("close")
        self._inner.close()

    # -- positioned / vectored ---------------------------------------------

    def pwrite(self, offset: int, data: BufferLike) -> int:
        self.stats.count("pwrite")
        self.stats.note_payloads([data])
        return self._inner.pwrite(offset, data)

    def pread(self, offset: int, n: int) -> bytes:
        self.stats.count("pread")
        out = self._inner.pread(offset, n)
        self.stats.count_read_bytes(len(out))
        return out

    def pwritev(self, offset: int, views: Sequence[BufferLike]) -> int:
        views = list(views)
        self.stats.count("pwritev")
        self.stats.note_payloads(views)
        return self._inner.pwritev(offset, views)

    def preadv(self, offset: int, sizes: Sequence[int]) -> list[bytes]:
        self.stats.count("preadv")
        out = self._inner.preadv(offset, sizes)
        self.stats.count_read_bytes(sum(len(p) for p in out), requests=len(out))
        return out

    def scatter_write(self, fragments) -> int:
        frags = list(fragments)
        self.stats.count("scatter_write")
        self.stats.note_payloads([d for _, d in frags])
        return self._inner.scatter_write(frags)

    def gather_read(self, requests: Sequence["tuple[int, int]"]) -> list[bytes]:
        self.stats.count("gather_read")
        out = self._inner.gather_read(requests)
        self.stats.count_read_bytes(sum(len(p) for p in out), requests=len(out))
        return out


class CountingBackend(Backend):
    """Backend decorator: all handles share one :class:`IOStats`."""

    def __init__(self, inner: Backend) -> None:
        self.inner = inner
        self.stats = IOStats()

    # Conveniences so scenarios talk to the backend only.

    def track_source(self, payload: object) -> None:
        self.stats.track_source(payload)

    def clear_sources(self) -> None:
        self.stats.clear_sources()

    def snapshot(self) -> dict[str, int]:
        return self.stats.snapshot()

    def open(self, path: str, mode: str) -> CountingRawFile:
        self.stats.count("open")
        return CountingRawFile(self.inner.open(path, mode), self.stats)

    def exists(self, path: str) -> bool:
        return self.inner.exists(path)

    def unlink(self, path: str) -> None:
        self.inner.unlink(path)

    def file_size(self, path: str) -> int:
        return self.inner.file_size(path)

    def stat_blocksize(self, path: str) -> int:
        return self.inner.stat_blocksize(path)

    def allocated_size(self, path: str) -> int:
        return self.inner.allocated_size(path)

    def identity_token(self, path: str) -> tuple:
        return self.inner.identity_token(path)
