"""The two traditional parallel-I/O approaches the paper compares against.

* :mod:`repro.baselines.tasklocal` — *multiple-file parallel*: every task
  opens its own physical file (the pattern whose metadata contention the
  paper measures in Fig. 3).
* :mod:`repro.baselines.singlefile` — *single-file sequential*: one
  designated I/O task gathers data from all others and writes a single
  file incrementally (MP2C's original checkpoint path, Fig. 6).
"""

from repro.baselines.singlefile import (
    read_single_file,
    single_file_path,
    write_single_file,
)
from repro.baselines.tasklocal import (
    read_task_local,
    task_local_path,
    write_task_local,
)

__all__ = [
    "read_single_file",
    "single_file_path",
    "write_single_file",
    "read_task_local",
    "task_local_path",
    "write_task_local",
]
