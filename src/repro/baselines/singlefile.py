"""Single-file-sequential baseline: a designated writer for all tasks.

MP2C's original checkpoint path (paper §5.1): one I/O task gathers data
from all others — in bounded slabs, because the designated task has limited
memory — and writes a single file incrementally.  I/O is fully serialized
and limited to what one node can push; the alternating gather/write phases
halve throughput again.

File format: a small header (magic, ntasks, per-task byte counts) followed
by the tasks' payloads concatenated in rank order, so the file can be
re-scattered on restart.
"""

from __future__ import annotations

import struct

from repro.backends.base import Backend
from repro.backends.localfs import LocalBackend
from repro.errors import SionFormatError, SionUsageError
from repro.simmpi.comm import Comm

_MAGIC = b"SEQ1FILE"
_HEAD = struct.Struct("<8sI")

#: Default gather-slab bound (bytes of payload buffered at the writer).
DEFAULT_SLAB_BYTES = 1 << 20


def single_file_path(base: str) -> str:
    """The single file is simply ``base`` itself."""
    return base


def write_single_file(
    comm: Comm,
    base: str,
    data: bytes,
    backend: Backend | None = None,
    slab_bytes: int = DEFAULT_SLAB_BYTES,
    root: int = 0,
) -> None:
    """Gather all tasks' payloads at ``root`` and write them sequentially.

    ``slab_bytes`` bounds how much payload the root buffers per round,
    forcing the multiple gather/write cycles the paper describes.  All
    tasks must call this collectively.
    """
    backend = backend if backend is not None else LocalBackend()
    if slab_bytes < 1:
        raise SionUsageError("slab_bytes must be positive")
    sizes = comm.allgather(len(data))
    f = backend.open(base, "wb") if comm.rank == root else None
    if comm.rank == root:
        assert f is not None
        f.write(_HEAD.pack(_MAGIC, comm.size))
        f.write(struct.pack(f"<{comm.size}Q", *sizes))
    # Slab loop: every task streams its payload to the root in bounded
    # pieces; the root writes each piece before requesting the next.
    for src in range(comm.size):
        nslabs = max(1, -(-sizes[src] // slab_bytes))
        for s in range(nslabs):
            lo = s * slab_bytes
            hi = min(lo + slab_bytes, sizes[src])
            if comm.rank == src:
                comm.send(data[lo:hi], dest=root, tag=1)
            if comm.rank == root:
                piece = comm.recv(source=src, tag=1)
                assert f is not None
                f.write(piece)
    if comm.rank == root:
        assert f is not None
        f.flush()
        f.close()
    comm.barrier()


def read_single_file(
    comm: Comm,
    base: str,
    backend: Backend | None = None,
    slab_bytes: int = DEFAULT_SLAB_BYTES,
    root: int = 0,
) -> bytes:
    """Root reads the single file incrementally and scatters the payloads."""
    backend = backend if backend is not None else LocalBackend()
    sizes: list[int] | None = None
    if comm.rank == root:
        f = backend.open(base, "rb")
        magic, ntasks = _HEAD.unpack(f.read(_HEAD.size))
        if magic != _MAGIC:
            raise SionFormatError(f"{base}: not a single-file checkpoint")
        if ntasks != comm.size:
            raise SionUsageError(
                f"{base} holds {ntasks} tasks, communicator has {comm.size}"
            )
        sizes = list(struct.unpack(f"<{ntasks}Q", f.read(8 * ntasks)))
    sizes = comm.bcast(sizes, root=root)
    assert sizes is not None
    out = bytearray()
    for dst in range(comm.size):
        nslabs = max(1, -(-sizes[dst] // slab_bytes))
        remaining = sizes[dst]
        for _ in range(nslabs):
            take = min(slab_bytes, remaining)
            remaining -= take
            if comm.rank == root:
                piece = f.read(take)
                if dst == root:
                    out.extend(piece)
                else:
                    comm.send(piece, dest=dst, tag=2)
            elif comm.rank == dst:
                out.extend(comm.recv(source=root, tag=2))
    if comm.rank == root:
        f.close()
    comm.barrier()
    return bytes(out)
