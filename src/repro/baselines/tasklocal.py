"""Multiple-file-parallel baseline: one physical file per task.

This is the access pattern SIONlib replaces.  Functionally trivial — the
cost is in metadata: N simultaneous creates in one directory serialize on
the directory lock / metadata server, which the simulated experiments
measure (Fig. 3) and which the functional implementation here reproduces
by issuing one create per task against the backend.
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.backends.localfs import LocalBackend
from repro.errors import SionUsageError
from repro.simmpi.comm import Comm


def task_local_path(base: str, rank: int) -> str:
    """Naming convention for task-local files: ``base.NNNNNN``."""
    if rank < 0:
        raise SionUsageError(f"rank must be non-negative: {rank}")
    return f"{base}.{rank:06d}"


def write_task_local(
    comm: Comm, base: str, data: bytes, backend: Backend | None = None
) -> str:
    """Each task creates and writes its own physical file.

    Returns the path this task wrote.  No communication is involved —
    that is the approach's appeal and, at scale, its downfall.
    """
    backend = backend if backend is not None else LocalBackend()
    path = task_local_path(base, comm.rank)
    with backend.open(path, "wb") as f:
        f.write(data)
    return path


def read_task_local(
    comm: Comm, base: str, backend: Backend | None = None
) -> bytes:
    """Each task reads back its own physical file."""
    backend = backend if backend is not None else LocalBackend()
    path = task_local_path(base, comm.rank)
    with backend.open(path, "rb") as f:
        return f.read()


def unlink_task_local(
    comm: Comm, base: str, backend: Backend | None = None
) -> None:
    """Each task removes its own file (cleanup is also a per-file op)."""
    backend = backend if backend is not None else LocalBackend()
    backend.unlink(task_local_path(base, comm.rank))
