"""Reproduction of *Scalable Massively Parallel I/O to Task-Local Files*
(W. Frings, F. Wolf, V. Petkov — SC 2009).

Packages
--------
``repro.sion``
    The paper's contribution: a library mapping many logical task-local
    files onto few physical *multifiles* with aligned chunks and internal
    metadata handling.
``repro.simmpi``
    In-process SPMD substrate (MPI-like communicators over threads).
``repro.fs``
    Discrete-event simulated parallel file system with GPFS-like (Jugene)
    and Lustre-like (Jaguar) machine profiles.
``repro.backends``
    Storage abstraction: real POSIX files or the simulated file system.
``repro.baselines``
    The two traditional approaches the paper compares against:
    multiple-file-parallel and single-file-sequential.
``repro.apps``
    Use-case applications: the MP2C-like particle code and the
    Scalasca-like tracing/analysis toolchain.
``repro.workloads`` / ``repro.analysis``
    Experiment scenario generators and result/reporting helpers for every
    table and figure of the paper's evaluation.
"""

from repro import errors

__version__ = "1.0.0"

__all__ = ["errors", "__version__"]
