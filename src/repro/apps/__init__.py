"""Use-case applications from the paper's Section 5.

* :mod:`repro.apps.mp2c` — a multi-particle collision dynamics (+ simple
  MD coupling) mini-app with domain decomposition whose checkpoint/restart
  I/O reproduces MP2C's pattern (52 bytes per particle, Fig. 6).
* :mod:`repro.apps.scalasca` — an event-tracing library, a synthetic
  SMG2000-like workload, and a parallel wait-state analyzer reproducing
  the Scalasca toolchain's I/O pattern (Table 2).
"""
