"""Per-task event collection and trace-file writing.

Mirrors the Scalasca tracing module's I/O behaviour (paper §5.2):

* *Measurement activation* creates the trace files and initializes the
  tracing library — the phase whose cost Table 2 compares (369.1 s with
  task-local files vs. 28.1 s with SIONlib at 32K tasks).  With SIONlib
  the collective open happens here, using a chunk size equal to the
  collection-buffer capacity (the uncompressed data bound), so only one
  block of chunks is ever needed — the exact trick the paper describes
  for retaining application-level zlib compression.
* During the run, events go into an in-memory collection buffer.
* At *finalization* each task compresses its buffer and writes it to its
  task-local trace.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.apps.scalasca.events import Event, EventKind, decode_events, encode_events
from repro.backends.base import Backend
from repro.baselines.tasklocal import task_local_path
from repro.errors import SionUsageError
from repro.simmpi.comm import Comm
from repro.sion import paropen
from repro.sion import open_rank as sion_open_rank

METHODS = ("sion", "tasklocal")

#: Default collection-buffer capacity per task (uncompressed bytes).
DEFAULT_BUFFER_CAPACITY = 1 << 20


class Tracer:
    """One task's collection buffer."""

    def __init__(self, rank: int, capacity: int = DEFAULT_BUFFER_CAPACITY) -> None:
        if capacity < 1:
            raise SionUsageError("buffer capacity must be positive")
        self.rank = rank
        self.capacity = capacity
        self._events: list[Event] = []
        self._bytes = 0
        self._clock = 0.0
        self.dropped = 0

    # -- instrumentation API --------------------------------------------------

    def advance(self, dt: float) -> float:
        """Advance this task's virtual clock (the 'application work')."""
        if dt < 0:
            raise SionUsageError("time cannot run backwards")
        self._clock += dt
        return self._clock

    @property
    def now(self) -> float:
        return self._clock

    def enter(self, region: int) -> None:
        """Record entering an instrumented region."""
        self._record(Event(EventKind.ENTER, region, timestamp=self._clock))

    def exit(self, region: int) -> None:
        """Record leaving an instrumented region."""
        self._record(Event(EventKind.EXIT, region, timestamp=self._clock))

    def send(self, dest: int, tag: int = 0, nbytes: int = 0) -> None:
        """Record a message send at the current clock."""
        self._record(
            Event(EventKind.SEND, dest, tag=tag, nbytes=nbytes, timestamp=self._clock)
        )

    def recv(self, source: int, tag: int = 0, nbytes: int = 0) -> None:
        """Record a message receive *completion* at the current clock."""
        self._record(
            Event(EventKind.RECV, source, tag=tag, nbytes=nbytes, timestamp=self._clock)
        )

    def barrier_enter(self, barrier_id: int = 0) -> None:
        """Record arriving at a collective barrier."""
        self._record(Event(EventKind.BARRIER_ENTER, barrier_id, timestamp=self._clock))

    def barrier_exit(self, barrier_id: int = 0) -> None:
        """Record leaving a collective barrier."""
        self._record(Event(EventKind.BARRIER_EXIT, barrier_id, timestamp=self._clock))

    def _record(self, event: Event) -> None:
        from repro.apps.scalasca.events import RECORD_BYTES

        if self._bytes + RECORD_BYTES > self.capacity:
            # Real tracers flush or drop; we drop and count, keeping the
            # buffer bound honest.
            self.dropped += 1
            return
        self._events.append(event)
        self._bytes += RECORD_BYTES

    # -- buffer access -----------------------------------------------------------

    @property
    def n_events(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[Event]:
        return list(self._events)

    def buffer_bytes(self) -> bytes:
        """The uncompressed record stream."""
        return encode_events(self._events)


@dataclass
class TraceWriteStats:
    """Per-task accounting of one finalization."""

    uncompressed_bytes: int
    written_bytes: int

    @property
    def compression_ratio(self) -> float:
        if self.uncompressed_bytes == 0:
            return 1.0
        return self.written_bytes / self.uncompressed_bytes


class TraceExperiment:
    """Collective trace-measurement lifecycle for one method.

    Usage (SPMD, inside every task)::

        exp = TraceExperiment(comm, "/scratch/trace", method="sion")
        exp.activate()        # create trace files   (Table 2's phase)
        exp.tracer.enter(0)   # ... instrument the application ...
        stats = exp.finalize()
    """

    def __init__(
        self,
        comm: Comm,
        base_path: str,
        method: str = "sion",
        backend: Backend | None = None,
        nfiles: int = 1,
        buffer_capacity: int = DEFAULT_BUFFER_CAPACITY,
        compression_level: int = 6,
    ) -> None:
        if method not in METHODS:
            raise SionUsageError(f"unknown trace method {method!r}; use {METHODS}")
        self.comm = comm
        self.base_path = base_path
        self.method = method
        self.backend = backend
        self.nfiles = nfiles
        self.compression_level = compression_level
        self.tracer = Tracer(comm.rank, capacity=buffer_capacity)
        self._activated = False
        self._finalized = False
        self._handle = None  # task-local raw file or SION parallel file

    # -- lifecycle -----------------------------------------------------------------

    def activate(self) -> None:
        """Create the trace files (the paper's *measurement activation*).

        Task-local: every task creates its own physical file — N creates
        in one directory.  SION: one collective open with chunk size equal
        to the buffer capacity.
        """
        if self._activated:
            raise SionUsageError("trace experiment already activated")
        if self.method == "tasklocal":
            from repro.backends.localfs import LocalBackend

            backend = self.backend if self.backend is not None else LocalBackend()
            path = task_local_path(self.base_path, self.comm.rank)
            self._handle = backend.open(path, "wb")
            self.comm.barrier()
        else:
            self._handle = paropen(
                self.base_path,
                "w",
                self.comm,
                chunksize=self.tracer.capacity,
                nfiles=self.nfiles,
                backend=self.backend,
            )
        self._activated = True

    def finalize(self) -> TraceWriteStats:
        """Compress the collection buffer and write the trace (collective)."""
        if not self._activated:
            raise SionUsageError("activate() must precede finalize()")
        if self._finalized:
            raise SionUsageError("trace experiment already finalized")
        raw = self.tracer.buffer_bytes()
        compressed = zlib.compress(raw, self.compression_level)
        assert self._handle is not None
        if self.method == "tasklocal":
            self._handle.write(compressed)
            self._handle.flush()
            self._handle.close()
            self.comm.barrier()
        else:
            self._handle.fwrite(compressed)
            self._handle.parclose()
        self._finalized = True
        return TraceWriteStats(
            uncompressed_bytes=len(raw), written_bytes=len(compressed)
        )


def read_trace(
    base_path: str,
    rank: int,
    method: str = "sion",
    backend: Backend | None = None,
) -> list[Event]:
    """Load one task's trace (the analyzer's per-task read path).

    For SION this uses the serial interface in task-local view mode —
    "parallel use of the serial interface", exactly as the paper's trace
    analyzer does.
    """
    if method == "sion":
        with sion_open_rank(base_path, rank, backend=backend) as rf:
            compressed = rf.read_all()
    elif method == "tasklocal":
        from repro.backends.localfs import LocalBackend

        backend = backend if backend is not None else LocalBackend()
        with backend.open(task_local_path(base_path, rank), "rb") as f:
            compressed = f.read()
    else:
        raise SionUsageError(f"unknown trace method {method!r}; use {METHODS}")
    return decode_events(zlib.decompress(compressed))
