"""Trace event records.

Fixed 32-byte binary records, little-endian: kind, a region or peer id, a
message tag, a byte count, and a double-precision timestamp.  Enough to
replay MPI point-to-point traffic and region nesting — which is what the
late-sender analysis needs.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ReproError

_REC = struct.Struct("<IiiqdI")  # kind, ref, tag, nbytes, timestamp, pad/crc-less
RECORD_BYTES = _REC.size
assert RECORD_BYTES == 32


class EventKind(enum.IntEnum):
    """Event types recorded by the tracer."""

    ENTER = 1  # ref = region id
    EXIT = 2  # ref = region id
    SEND = 3  # ref = destination rank
    RECV = 4  # ref = source rank
    BARRIER_ENTER = 5  # ref = barrier id
    BARRIER_EXIT = 6  # ref = barrier id


@dataclass(frozen=True)
class Event:
    """One trace record."""

    kind: EventKind
    ref: int  # region id (ENTER/EXIT) or peer rank (SEND/RECV)
    tag: int = 0
    nbytes: int = 0
    timestamp: float = 0.0

    def encode(self) -> bytes:
        return _REC.pack(int(self.kind), self.ref, self.tag, self.nbytes, self.timestamp, 0)

    @classmethod
    def decode(cls, raw: bytes) -> "Event":
        if len(raw) != RECORD_BYTES:
            raise ReproError(f"event record must be {RECORD_BYTES} bytes, got {len(raw)}")
        kind, ref, tag, nbytes, ts, _pad = _REC.unpack(raw)
        try:
            ekind = EventKind(kind)
        except ValueError:
            raise ReproError(f"unknown event kind {kind}") from None
        return cls(kind=ekind, ref=ref, tag=tag, nbytes=nbytes, timestamp=ts)


def encode_events(events: Iterable[Event]) -> bytes:
    """Serialize an event sequence into a flat record stream."""
    return b"".join(e.encode() for e in events)


def decode_events(raw: bytes) -> list[Event]:
    """Parse a record stream back into events."""
    if len(raw) % RECORD_BYTES:
        raise ReproError(
            f"trace length {len(raw)} is not a multiple of {RECORD_BYTES}"
        )
    return [
        Event.decode(raw[i : i + RECORD_BYTES])
        for i in range(0, len(raw), RECORD_BYTES)
    ]


def iter_decode(raw: bytes) -> Iterator[Event]:
    """Lazy variant of :func:`decode_events` for large traces."""
    if len(raw) % RECORD_BYTES:
        raise ReproError(
            f"trace length {len(raw)} is not a multiple of {RECORD_BYTES}"
        )
    for i in range(0, len(raw), RECORD_BYTES):
        yield Event.decode(raw[i : i + RECORD_BYTES])
