"""Parallel trace analyzer: late-sender wait-state search (paper Fig. 7).

Each analysis task loads the trace of "its" application rank into memory
(task-local view), extracts the send timestamps, and exchanges them so
every receiver can compare a message's send time against the moment it was
ready to receive.  A receive that had to wait for a late sender contributes
``send_ts - ready_ts`` of waiting time — Scalasca's *Late Sender* pattern.

The analysis is itself a parallel program over the same communicator size
as the original run, mirroring the paper's workflow where traces are
"loaded postmortem into the distributed memory of a parallel trace
analyzer".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.scalasca.events import Event, EventKind
from repro.apps.scalasca.tracer import read_trace
from repro.backends.base import Backend
from repro.errors import ReproError
from repro.simmpi.comm import Comm


@dataclass
class WaitState:
    """One detected late-sender instance."""

    receiver: int
    sender: int
    tag: int
    wait_time: float
    recv_timestamp: float


@dataclass
class AnalysisResult:
    """Global outcome of the wait-state search."""

    ntasks: int
    total_wait_time: float
    max_wait_time: float
    n_wait_states: int
    wait_per_task: list[float]
    worst_states: list[WaitState] = field(default_factory=list)

    @property
    def mean_wait_per_task(self) -> float:
        return self.total_wait_time / self.ntasks if self.ntasks else 0.0


def _extract_sends(events: list[Event]) -> dict[int, list[tuple[int, float]]]:
    """Per-destination ordered list of (tag, timestamp) of SEND events."""
    out: dict[int, list[tuple[int, float]]] = {}
    for e in events:
        if e.kind == EventKind.SEND:
            out.setdefault(e.ref, []).append((e.tag, e.timestamp))
    return out


def _extract_recvs(events: list[Event]) -> dict[int, list[tuple[int, float, float]]]:
    """Per-source ordered (tag, ready_ts, completion_ts) of RECV events.

    ``ready_ts`` is the timestamp of the event preceding the receive —
    the moment the task could have completed the receive had the message
    already arrived.
    """
    out: dict[int, list[tuple[int, float, float]]] = {}
    prev_ts = 0.0
    for e in events:
        if e.kind == EventKind.RECV:
            out.setdefault(e.ref, []).append((e.tag, prev_ts, e.timestamp))
        prev_ts = e.timestamp
    return out


def analyze_local(
    rank: int,
    events: list[Event],
    sends_to_me: dict[int, list[tuple[int, float]]],
) -> tuple[float, list[WaitState]]:
    """Match receives against sender timestamps; return waits found."""
    waits: list[WaitState] = []
    total = 0.0
    recvs = _extract_recvs(events)
    for src, rlist in recvs.items():
        slist = sends_to_me.get(src, [])
        if len(slist) < len(rlist):
            raise ReproError(
                f"rank {rank}: {len(rlist)} receives from {src} but only "
                f"{len(slist)} matching sends in its trace"
            )
        for (tag, ready_ts, done_ts), (stag, send_ts) in zip(rlist, slist):
            if tag != stag:
                raise ReproError(
                    f"rank {rank}: tag mismatch with {src} ({tag} != {stag})"
                )
            wait = send_ts - ready_ts
            if wait > 1e-12:
                total += wait
                waits.append(
                    WaitState(
                        receiver=rank,
                        sender=src,
                        tag=tag,
                        wait_time=wait,
                        recv_timestamp=done_ts,
                    )
                )
    return total, waits


@dataclass
class BarrierWaitResult:
    """Wait-at-Barrier severities (identical on every rank).

    ``wait_per_task[r]`` is the total time rank ``r`` spent waiting at
    barriers for the slowest participant; instance ``k`` of
    ``instance_waits`` is that barrier occurrence's summed wait.
    """

    ntasks: int
    n_instances: int
    total_wait_time: float
    wait_per_task: list[float]
    instance_waits: list[float]

    @property
    def mean_wait_per_task(self) -> float:
        return self.total_wait_time / self.ntasks if self.ntasks else 0.0


def analyze_barriers(
    comm: Comm,
    base_path: str,
    method: str = "sion",
    backend: Backend | None = None,
) -> BarrierWaitResult:
    """Collective Wait-at-Barrier search (Scalasca's barrier pattern).

    Barrier instances are matched by occurrence order (SPMD programs hit
    the same barriers in the same order on every rank); each instance's
    wait for rank r is ``max_enter - enter_r``.
    """
    events = read_trace(base_path, comm.rank, method=method, backend=backend)
    my_enters = [
        e.timestamp for e in events if e.kind == EventKind.BARRIER_ENTER
    ]
    all_enters = comm.allgather(my_enters)
    counts = {len(lst) for lst in all_enters}
    if len(counts) > 1:
        raise ReproError(
            f"ranks disagree on the number of barrier instances: {sorted(counts)}"
        )
    n_instances = counts.pop() if counts else 0
    wait_per_task = [0.0] * comm.size
    instance_waits: list[float] = []
    for k in range(n_instances):
        enters = [all_enters[r][k] for r in range(comm.size)]
        latest = max(enters)
        waits = [latest - e for e in enters]
        instance_waits.append(sum(waits))
        for r, w in enumerate(waits):
            wait_per_task[r] += w
    return BarrierWaitResult(
        ntasks=comm.size,
        n_instances=n_instances,
        total_wait_time=sum(wait_per_task),
        wait_per_task=wait_per_task,
        instance_waits=instance_waits,
    )


def analyze_traces(
    comm: Comm,
    base_path: str,
    method: str = "sion",
    backend: Backend | None = None,
    keep_worst: int = 10,
) -> AnalysisResult:
    """Collective late-sender analysis over all tasks' traces.

    Every task loads trace ``comm.rank``, the send timestamps are
    exchanged all-to-all, and the per-task waiting times are reduced to a
    global result (identical on every rank).
    """
    events = read_trace(base_path, comm.rank, method=method, backend=backend)
    sends = _extract_sends(events)
    # Route my send timestamps to each destination's analyzer task.
    outboxes = [sends.get(dst, []) for dst in range(comm.size)]
    inbox_lists = comm.alltoall(outboxes)
    sends_to_me = {
        src: lst for src, lst in enumerate(inbox_lists) if lst
    }
    my_wait, my_states = analyze_local(comm.rank, events, sends_to_me)

    wait_per_task = comm.allgather(my_wait)
    all_counts = comm.allreduce(len(my_states))
    # Collect a bounded set of the worst wait states globally.
    my_states.sort(key=lambda w: w.wait_time, reverse=True)
    gathered = comm.allgather(my_states[:keep_worst])
    worst: list[WaitState] = [w for states in gathered for w in states]
    worst.sort(key=lambda w: w.wait_time, reverse=True)
    return AnalysisResult(
        ntasks=comm.size,
        total_wait_time=sum(wait_per_task),
        max_wait_time=max(wait_per_task) if wait_per_task else 0.0,
        n_wait_states=all_counts,
        wait_per_task=wait_per_task,
        worst_states=worst[:keep_worst],
    )
