"""Region profiling from event traces (the 'profile' half of Scalasca).

Replays each task's ENTER/EXIT nesting to compute per-region *inclusive*
time (everything between enter and exit) and *exclusive* time (inclusive
minus nested children) — the standard call-path profile.  A collective
wrapper aggregates the per-rank profiles into min/mean/max severities,
which is how imbalance shows up in profile mode (before one ever needs
traces).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.scalasca.events import Event, EventKind
from repro.apps.scalasca.tracer import read_trace
from repro.backends.base import Backend
from repro.errors import ReproError
from repro.simmpi.comm import Comm


@dataclass
class RegionStats:
    """One region's accumulated numbers on one rank."""

    region: int
    visits: int = 0
    inclusive: float = 0.0
    exclusive: float = 0.0


def profile_events(events: list[Event]) -> dict[int, RegionStats]:
    """Compute a region profile from one task's event stream.

    Raises :class:`ReproError` on malformed nesting (EXIT without ENTER,
    mismatched region ids, unclosed regions).
    """
    stats: dict[int, RegionStats] = {}
    # Stack of [region, enter_ts, child_time_accumulator].
    stack: list[list] = []
    for e in events:
        if e.kind == EventKind.ENTER:
            stack.append([e.ref, e.timestamp, 0.0])
        elif e.kind == EventKind.EXIT:
            if not stack:
                raise ReproError(f"EXIT of region {e.ref} without a matching ENTER")
            region, enter_ts, child_time = stack.pop()
            if region != e.ref:
                raise ReproError(
                    f"region nesting violated: EXIT {e.ref} inside region {region}"
                )
            inclusive = e.timestamp - enter_ts
            if inclusive < -1e-12:
                raise ReproError(f"region {region}: negative duration {inclusive}")
            st = stats.setdefault(region, RegionStats(region))
            st.visits += 1
            st.inclusive += inclusive
            st.exclusive += inclusive - child_time
            if stack:
                stack[-1][2] += inclusive
    if stack:
        raise ReproError(
            f"trace ended with {len(stack)} unclosed region(s): "
            f"{[frame[0] for frame in stack]}"
        )
    return stats


@dataclass
class RegionSeverity:
    """Cross-rank aggregation of one region."""

    region: int
    total_visits: int
    sum_exclusive: float
    min_exclusive: float
    max_exclusive: float

    @property
    def mean_exclusive(self) -> float:
        return self.sum_exclusive / self.nranks if self.nranks else 0.0

    nranks: int = 0

    @property
    def imbalance(self) -> float:
        """max/mean exclusive time: 1.0 is perfectly balanced."""
        mean = self.mean_exclusive
        return self.max_exclusive / mean if mean > 0 else 1.0


@dataclass
class ProfileResult:
    """Global profile: per-region severities, identical on every rank."""

    ntasks: int
    regions: dict[int, RegionSeverity] = field(default_factory=dict)

    def most_imbalanced(self) -> RegionSeverity | None:
        """The region whose exclusive time varies most across ranks."""
        candidates = [r for r in self.regions.values() if r.sum_exclusive > 0]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.imbalance)


def profile_traces(
    comm: Comm,
    base_path: str,
    method: str = "sion",
    backend: Backend | None = None,
) -> ProfileResult:
    """Collective: every rank profiles its trace; severities are reduced."""
    events = read_trace(base_path, comm.rank, method=method, backend=backend)
    local = profile_events(events)
    all_profiles = comm.allgather(
        {r: (s.visits, s.exclusive) for r, s in local.items()}
    )
    result = ProfileResult(ntasks=comm.size)
    region_ids = sorted({r for prof in all_profiles for r in prof})
    for region in region_ids:
        per_rank = [prof.get(region, (0, 0.0)) for prof in all_profiles]
        exclusives = [e for _, e in per_rank]
        result.regions[region] = RegionSeverity(
            region=region,
            total_visits=sum(v for v, _ in per_rank),
            sum_exclusive=sum(exclusives),
            min_exclusive=min(exclusives),
            max_exclusive=max(exclusives),
            nranks=comm.size,
        )
    return result
