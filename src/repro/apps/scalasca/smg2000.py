"""Synthetic SMG2000-like workload generator.

The paper's Table 2 run traced the ASC SMG2000 benchmark (a semicoarsening
multigrid solver) on 32K cores.  What matters for the reproduction is the
*shape* of the traffic the tracer records: iterative sweeps over a 3-D
process grid with nearest-neighbour halo exchanges, region nesting for the
solver phases, and a controllable computational imbalance that produces
late-sender wait states for the analyzer to find.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.mp2c.decomposition import factor3
from repro.apps.scalasca.tracer import Tracer
from repro.errors import ReproError

# Region ids used in the generated traces.
REGION_MAIN = 0
REGION_RELAX = 1
REGION_EXCHANGE = 2
REGION_COARSEN = 3

#: Halo message size (bytes) recorded for each exchange.
HALO_BYTES = 4096


@dataclass(frozen=True)
class SMG2000Config:
    """Workload shape parameters."""

    ntasks: int
    iterations: int = 4
    levels: int = 3
    base_work: float = 1.0e-3  # seconds of 'compute' per relax sweep
    imbalance: float = 0.0  # extra work fraction on imbalanced tasks
    imbalanced_fraction: float = 0.25  # share of tasks carrying extra work
    seed: int = 1

    def __post_init__(self) -> None:
        if self.ntasks < 1:
            raise ReproError("ntasks must be >= 1")
        if self.iterations < 1 or self.levels < 1:
            raise ReproError("iterations and levels must be >= 1")
        if self.imbalance < 0:
            raise ReproError("imbalance must be non-negative")
        if not 0.0 <= self.imbalanced_fraction <= 1.0:
            raise ReproError("imbalanced_fraction must be in [0, 1]")


def neighbours(rank: int, grid: tuple[int, int, int]) -> list[int]:
    """The six face neighbours of ``rank`` on a periodic 3-D grid."""
    gx, gy, gz = grid
    x = rank % gx
    y = (rank // gx) % gy
    z = rank // (gx * gy)

    def enc(a: int, b: int, c: int) -> int:
        return (a % gx) + (b % gy) * gx + (c % gz) * gx * gy

    out = []
    for d in (-1, 1):
        out.extend([enc(x + d, y, z), enc(x, y + d, z), enc(x, y, z + d)])
    # Degenerate grid axes produce self-neighbours; keep unique, drop self.
    uniq = sorted({n for n in out if n != rank})
    return uniq


def is_imbalanced(rank: int, config: SMG2000Config) -> bool:
    """Deterministic choice of the tasks that carry extra work."""
    k = max(1, int(round(config.ntasks * config.imbalanced_fraction)))
    if config.imbalance == 0.0:
        return False
    rng = np.random.default_rng(config.seed)
    slow = rng.choice(config.ntasks, size=min(k, config.ntasks), replace=False)
    return rank in set(int(s) for s in slow)


def generate_smg2000_trace(rank: int, config: SMG2000Config, tracer: Tracer) -> None:
    """Emit one task's events for the whole synthetic run into ``tracer``.

    Send timestamps are taken *after* the sender's compute phase; receive
    completions happen when the slowest involved party is done — so a task
    with fast neighbours shows no wait, while a fast task receiving from a
    slow sender records a RECV completion later than its own readiness:
    the classic late-sender pattern.
    """
    grid = factor3(config.ntasks)
    nbrs = neighbours(rank, grid)
    slow_me = is_imbalanced(rank, config)
    tracer.enter(REGION_MAIN)
    for _ in range(config.iterations):
        for level in range(config.levels):
            # Relaxation sweep: coarser levels do less work.
            work = config.base_work / (2**level)
            if slow_me:
                work *= 1.0 + config.imbalance
            tracer.enter(REGION_RELAX)
            tracer.advance(work)
            tracer.exit(REGION_RELAX)

            # Halo exchange with face neighbours.
            tracer.enter(REGION_EXCHANGE)
            ready = tracer.now
            for n in nbrs:
                tracer.send(n, tag=level, nbytes=HALO_BYTES)
            for n in nbrs:
                # The matching send leaves the neighbour after *its* sweep:
                # reconstruct that time deterministically.
                n_work = config.base_work / (2**level)
                if is_imbalanced(n, config):
                    n_work *= 1.0 + config.imbalance
                sender_time = ready - (work - n_work)  # same iteration start
                completion = max(tracer.now, sender_time)
                if completion > tracer.now:
                    tracer.advance(completion - tracer.now)
                tracer.recv(n, tag=level, nbytes=HALO_BYTES)
            tracer.exit(REGION_EXCHANGE)
        tracer.enter(REGION_COARSEN)
        tracer.advance(config.base_work * 0.1)
        tracer.exit(REGION_COARSEN)
        # End-of-iteration barrier: the analyzer derives Wait-at-Barrier
        # severities from the spread of the enter timestamps.
        tracer.barrier_enter(barrier_id=0)
        tracer.barrier_exit(barrier_id=0)
    tracer.exit(REGION_MAIN)
