"""Scalasca-like event tracing and wait-state analysis (paper §5.2).

The toolchain mirrors Fig. 7 of the paper:

1. an *instrumented application* (here, the synthetic SMG2000-like
   workload in :mod:`repro.apps.scalasca.smg2000`) emits events into a
   per-task collection buffer (:mod:`repro.apps.scalasca.tracer`);
2. at measurement finalization every task writes its buffer — zlib
   compressed, as the real Scalasca does — to a task-local trace through
   either physical task-local files or a SION multifile;
3. a *parallel trace analyzer* (:mod:`repro.apps.scalasca.analyzer`)
   loads the traces postmortem (SION: the serial interface in task-local
   view mode, exactly as the paper describes) and searches for
   late-sender wait states.

Table 2's "measurement activation" is step 2's file creation plus tracer
initialization.
"""

from repro.apps.scalasca.events import Event, EventKind, decode_events, encode_events
from repro.apps.scalasca.tracer import Tracer, TraceExperiment
from repro.apps.scalasca.analyzer import analyze_traces, AnalysisResult
from repro.apps.scalasca.profile import profile_events, profile_traces, ProfileResult
from repro.apps.scalasca.smg2000 import generate_smg2000_trace

__all__ = [
    "Event",
    "EventKind",
    "encode_events",
    "decode_events",
    "Tracer",
    "TraceExperiment",
    "analyze_traces",
    "AnalysisResult",
    "profile_events",
    "profile_traces",
    "ProfileResult",
    "generate_smg2000_trace",
]
