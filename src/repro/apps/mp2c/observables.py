"""Physical observables and a thermostat for the particle mini-app.

Mesoscale solvent simulations are judged by their transport and thermal
behaviour; these are the standard diagnostics (unit masses, k_B = 1):

* kinetic temperature and centre-of-mass velocity,
* mean-squared displacement (diffusion),
* a speed histogram with the Maxwell-Boltzmann reference, and
* a velocity-rescaling thermostat (SRD conserves energy exactly, so a
  thermostat is how one sets or holds the temperature).
"""

from __future__ import annotations

import numpy as np

from repro.apps.mp2c.particles import ParticleState
from repro.errors import ReproError


def temperature(state: ParticleState) -> float:
    """Kinetic temperature: ``2 KE / (3 N)`` with k_B = m = 1.

    Measured relative to the centre-of-mass frame, as is physical.
    """
    if state.n == 0:
        return 0.0
    v_rel = state.vel - state.vel.mean(axis=0)
    ke = 0.5 * float((v_rel**2).sum())
    return 2.0 * ke / (3.0 * state.n)


def com_velocity(state: ParticleState) -> np.ndarray:
    """Centre-of-mass velocity (unit masses)."""
    if state.n == 0:
        return np.zeros(3)
    return state.vel.mean(axis=0)


def rescale_to_temperature(state: ParticleState, target: float) -> ParticleState:
    """Velocity-rescaling thermostat.

    Scales peculiar velocities so the kinetic temperature equals
    ``target`` exactly; the centre-of-mass velocity is preserved, so
    momentum is untouched.
    """
    if target < 0:
        raise ReproError(f"target temperature must be non-negative: {target}")
    if state.n == 0:
        return state
    current = temperature(state)
    com = state.vel.mean(axis=0)
    if current <= 0:
        # No thermal motion to scale; seed nothing, return unchanged.
        return state
    factor = np.sqrt(target / current)
    new_vel = com + (state.vel - com) * factor
    return ParticleState(state.ids, state.pos, new_vel)


def mean_squared_displacement(
    initial: ParticleState, final: ParticleState
) -> float:
    """MSD between two snapshots, matched by particle id.

    Positions must be *unwrapped* (no periodic folding between the
    snapshots) for the value to measure diffusion.
    """
    if initial.n != final.n:
        raise ReproError(
            f"snapshots hold different particle counts: {initial.n} vs {final.n}"
        )
    if initial.n == 0:
        return 0.0
    a = initial.sorted_by_id()
    b = final.sorted_by_id()
    if not np.array_equal(a.ids, b.ids):
        raise ReproError("snapshots hold different particle ids")
    d = b.pos - a.pos
    return float((d**2).sum(axis=1).mean())


def speed_histogram(
    state: ParticleState, bins: int = 32, v_max: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Normalized speed distribution: ``(bin_centers, density)``."""
    if bins < 1:
        raise ReproError("need at least one bin")
    speeds = np.linalg.norm(state.vel - com_velocity(state), axis=1)
    hi = v_max if v_max is not None else (float(speeds.max()) or 1.0)
    counts, edges = np.histogram(speeds, bins=bins, range=(0.0, hi), density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, counts


def maxwell_boltzmann_speed_pdf(v: np.ndarray, temp: float) -> np.ndarray:
    """Reference Maxwell-Boltzmann speed density at temperature ``temp``."""
    if temp <= 0:
        raise ReproError(f"temperature must be positive: {temp}")
    v = np.asarray(v, dtype=float)
    pref = 4.0 * np.pi * (1.0 / (2.0 * np.pi * temp)) ** 1.5
    return pref * v**2 * np.exp(-(v**2) / (2.0 * temp))


def maxwellian_deviation(state: ParticleState, bins: int = 24) -> float:
    """L1 distance between the measured and MB speed densities.

    Small for a thermalized solvent; used as a sanity check that the SRD
    collision step drives velocities toward equilibrium.
    """
    temp = temperature(state)
    if temp <= 0 or state.n == 0:
        return 0.0
    v_max = 4.0 * np.sqrt(temp)
    centers, measured = speed_histogram(state, bins=bins, v_max=v_max)
    reference = maxwell_boltzmann_speed_pdf(centers, temp)
    width = centers[1] - centers[0] if len(centers) > 1 else 1.0
    return float(np.abs(measured - reference).sum() * width)
