"""Regular 3-D domain decomposition with ownership migration.

MP2C distributes "geometrical domains of the same volume across the
different processes" (paper §5.1).  We factor the task count into a 3-D
process grid, assign each task an axis-aligned box of the periodic
simulation domain, and migrate particles to their owners after every
streaming step via an all-to-all exchange.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.mp2c.particles import ParticleState
from repro.errors import ReproError
from repro.simmpi.comm import Comm


def factor3(n: int) -> tuple[int, int, int]:
    """Factor ``n`` into three near-equal factors (largest first)."""
    if n < 1:
        raise ReproError(f"cannot build a process grid for {n} tasks")
    best: tuple[int, int, int] | None = None
    best_score: tuple[int, int] | None = None
    for a in range(1, int(round(n ** (1 / 3))) + 2):
        if n % a:
            continue
        m = n // a
        for b in range(a, int(np.sqrt(m)) + 1):
            if m % b:
                continue
            c = m // b
            dims = tuple(sorted((a, b, c), reverse=True))
            score = (dims[0] - dims[2], dims[0])  # prefer cubic
            if best_score is None or score < best_score:
                best, best_score = dims, score
    if best is None:  # n is prime
        best = (n, 1, 1)
    return best  # type: ignore[return-value]


@dataclass(frozen=True)
class DomainDecomposition:
    """Partition of a periodic box over a 3-D process grid."""

    box: tuple[float, float, float]
    grid: tuple[int, int, int]

    @classmethod
    def for_tasks(
        cls, ntasks: int, box: tuple[float, float, float]
    ) -> "DomainDecomposition":
        """Decompose ``box`` over a near-cubic grid of ``ntasks`` domains."""
        return cls(box=box, grid=factor3(ntasks))

    @property
    def ntasks(self) -> int:
        gx, gy, gz = self.grid
        return gx * gy * gz

    def coords_of(self, rank: int) -> tuple[int, int, int]:
        """Grid coordinates of ``rank`` (x fastest)."""
        gx, gy, gz = self.grid
        if not 0 <= rank < gx * gy * gz:
            raise ReproError(f"rank {rank} outside grid {self.grid}")
        x = rank % gx
        y = (rank // gx) % gy
        z = rank // (gx * gy)
        return x, y, z

    def rank_of_coords(self, x: int, y: int, z: int) -> int:
        """Inverse of :meth:`coords_of` (coordinates taken modulo grid)."""
        gx, gy, gz = self.grid
        return (x % gx) + (y % gy) * gx + (z % gz) * gx * gy

    def bounds_of(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned ``(lo, hi)`` corners of ``rank``'s domain."""
        x, y, z = self.coords_of(rank)
        sizes = np.asarray(self.box) / np.asarray(self.grid)
        lo = sizes * np.asarray([x, y, z], dtype=float)
        return lo, lo + sizes

    def owner_of(self, pos: np.ndarray) -> np.ndarray:
        """Owning rank per particle position (positions wrapped first)."""
        box = np.asarray(self.box)
        grid = np.asarray(self.grid)
        wrapped = np.mod(pos, box)
        cell = np.floor(wrapped / box * grid).astype(np.int64)
        cell = np.minimum(cell, grid - 1)  # guard the pos == box edge
        return cell[:, 0] + cell[:, 1] * grid[0] + cell[:, 2] * grid[0] * grid[1]

    def wrap(self, pos: np.ndarray) -> np.ndarray:
        """Apply periodic boundary conditions."""
        return np.mod(pos, np.asarray(self.box))


def migrate(
    comm: Comm, decomp: DomainDecomposition, state: ParticleState
) -> ParticleState:
    """Exchange particles so each ends up on the task owning its position.

    Collective: every task partitions its particles by destination and
    performs an all-to-all.  Positions are wrapped into the periodic box
    as part of migration.
    """
    if decomp.ntasks != comm.size:
        raise ReproError(
            f"decomposition has {decomp.ntasks} domains, "
            f"communicator has {comm.size} tasks"
        )
    wrapped = decomp.wrap(state.pos)
    state = ParticleState(state.ids, wrapped, state.vel)
    owners = decomp.owner_of(state.pos)
    outboxes = [state.select(owners == dst) for dst in range(comm.size)]
    inboxes = comm.alltoall(outboxes)
    return ParticleState.concatenate(inboxes)
