"""Multi-particle collision dynamics (stochastic rotation dynamics).

The MPC/SRD algorithm that gives MP2C its name: particles stream freely
for a time step, then are sorted into cubic collision cells; within each
cell the velocities relative to the cell's center-of-mass velocity are
rotated by a fixed angle around a random axis.  The rotation conserves
momentum and kinetic energy per cell exactly — the invariants our property
tests check.

This is a local (per-task) kernel; the surrounding driver handles domain
decomposition and migration.  Grid-shifting for Galilean invariance is
supported via the ``shift`` argument.
"""

from __future__ import annotations

import numpy as np

from repro.apps.mp2c.particles import ParticleState
from repro.errors import ReproError


def stream(state: ParticleState, dt: float) -> ParticleState:
    """Free streaming: positions advance ballistically by ``dt``."""
    if dt < 0:
        raise ReproError(f"negative time step: {dt}")
    return ParticleState(state.ids, state.pos + state.vel * dt, state.vel)


def _rotation_matrices(axes: np.ndarray, angle: float) -> np.ndarray:
    """Rodrigues rotation matrices for unit ``axes`` (k, 3) and one angle."""
    k = axes
    c, s = np.cos(angle), np.sin(angle)
    n = len(k)
    kx, ky, kz = k[:, 0], k[:, 1], k[:, 2]
    zero = np.zeros(n)
    cross = np.stack(
        [
            np.stack([zero, -kz, ky], axis=1),
            np.stack([kz, zero, -kx], axis=1),
            np.stack([-ky, kx, zero], axis=1),
        ],
        axis=1,
    )
    outer = k[:, :, None] * k[:, None, :]
    eye = np.eye(3)[None, :, :]
    return c * eye + s * cross + (1.0 - c) * outer


def collide(
    state: ParticleState,
    cell_size: float,
    angle: float = 2.0 * np.pi / 3.0,
    rng: np.random.Generator | None = None,
    shift: np.ndarray | None = None,
) -> ParticleState:
    """SRD collision step over cubic cells of edge ``cell_size``.

    Velocities are rotated around a per-cell random unit axis relative to
    the cell's mean velocity.  ``shift`` (a 3-vector in [0, cell_size))
    implements the random grid shift that restores Galilean invariance.
    """
    if cell_size <= 0:
        raise ReproError(f"cell_size must be positive: {cell_size}")
    if state.n == 0:
        return state
    rng = rng if rng is not None else np.random.default_rng()
    offset = np.zeros(3) if shift is None else np.asarray(shift, dtype=float)
    cells = np.floor((state.pos + offset) / cell_size).astype(np.int64)
    # Group particles by cell via lexicographic sort.
    order = np.lexsort((cells[:, 2], cells[:, 1], cells[:, 0]))
    sorted_cells = cells[order]
    boundaries = np.any(np.diff(sorted_cells, axis=0) != 0, axis=1)
    group_starts = np.concatenate(([0], np.nonzero(boundaries)[0] + 1))
    group_ends = np.concatenate((group_starts[1:], [state.n]))
    ncells = len(group_starts)

    # Per-cell center-of-mass velocity (unit masses).
    vel_sorted = state.vel[order]
    group_ids = np.repeat(np.arange(ncells), group_ends - group_starts)
    vsum = np.zeros((ncells, 3))
    np.add.at(vsum, group_ids, vel_sorted)
    counts = (group_ends - group_starts).astype(float)
    vmean = vsum / counts[:, None]

    # Random unit axes per cell, rotate relative velocities.
    axes = rng.normal(size=(ncells, 3))
    axes /= np.linalg.norm(axes, axis=1, keepdims=True)
    rot = _rotation_matrices(axes, angle)
    vrel = vel_sorted - vmean[group_ids]
    vrel_rot = np.einsum("nij,nj->ni", rot[group_ids], vrel)
    new_vel_sorted = vmean[group_ids] + vrel_rot

    new_vel = np.empty_like(state.vel)
    new_vel[order] = new_vel_sorted
    return ParticleState(state.ids, state.pos, new_vel)


def srd_step(
    state: ParticleState,
    dt: float,
    cell_size: float,
    angle: float = 2.0 * np.pi / 3.0,
    rng: np.random.Generator | None = None,
) -> ParticleState:
    """One full SRD step: stream, then collide with a random grid shift."""
    rng = rng if rng is not None else np.random.default_rng()
    streamed = stream(state, dt)
    shift = rng.uniform(0.0, cell_size, size=3)
    return collide(streamed, cell_size, angle=angle, rng=rng, shift=shift)
