"""Checkpoint/restart I/O for the particle mini-app (paper §5.1, Fig. 6).

Three interchangeable methods write the same 52-byte-per-particle records:

* ``"singlefile"`` — MP2C's original single-file-sequential path: gather
  at a designated writer, serialized I/O (the slow baseline of Fig. 6);
* ``"tasklocal"`` — one physical file per task (the approach whose
  creation cost Fig. 3 measures);
* ``"sion"`` — the SIONlib path: the paper reports that switching MP2C to
  it took ~50 changed lines and lifted the feasible problem size from
  ~10 M to over a billion particles.

Restart reads are symmetric, and re-decompose particles to their owning
domains afterwards, so a restart works even on a different task count for
``sion`` and ``singlefile`` (task-local files pin the task count).
"""

from __future__ import annotations

from repro.apps.mp2c.decomposition import DomainDecomposition, migrate
from repro.apps.mp2c.particles import ParticleState
from repro.backends.base import Backend
from repro.baselines.singlefile import read_single_file, write_single_file
from repro.baselines.tasklocal import read_task_local, write_task_local
from repro.errors import SionUsageError
from repro.simmpi.comm import Comm
from repro.sion import paropen

METHODS = ("sion", "tasklocal", "singlefile")


def write_restart(
    comm: Comm,
    path: str,
    state: ParticleState,
    method: str = "sion",
    backend: Backend | None = None,
    nfiles: int = 1,
    chunksize: int | None = None,
    fsblksize: int | None = None,
) -> int:
    """Write this task's particles to a restart file set.

    ``chunksize`` defaults to this task's full record payload (MP2C knows
    its local particle count, so one chunk per task suffices — one block
    total, as in the paper's runs).  Returns bytes written by this task.
    """
    payload = state.to_records()
    if method == "sion":
        f = paropen(
            path,
            "w",
            comm,
            chunksize=chunksize if chunksize is not None else max(len(payload), 1),
            nfiles=nfiles,
            fsblksize=fsblksize,
            backend=backend,
        )
        f.fwrite(payload)
        f.parclose()
    elif method == "tasklocal":
        write_task_local(comm, path, payload, backend=backend)
    elif method == "singlefile":
        write_single_file(comm, path, payload, backend=backend)
    else:
        raise SionUsageError(f"unknown checkpoint method {method!r}; use {METHODS}")
    return len(payload)


def read_restart(
    comm: Comm,
    path: str,
    method: str = "sion",
    backend: Backend | None = None,
    decomp: DomainDecomposition | None = None,
) -> ParticleState:
    """Read this task's particles back; optionally re-migrate to owners.

    With ``decomp`` given, particles are migrated to the tasks owning
    their positions after the raw read — the restart then matches the
    decomposition even if positions moved between write and read.
    """
    if method == "sion":
        f = paropen(path, "r", comm, backend=backend)
        raw = f.read_all()
        f.parclose()
    elif method == "tasklocal":
        raw = read_task_local(comm, path, backend=backend)
    elif method == "singlefile":
        raw = read_single_file(comm, path, backend=backend)
    else:
        raise SionUsageError(f"unknown checkpoint method {method!r}; use {METHODS}")
    state = ParticleState.from_records(raw)
    if decomp is not None:
        state = migrate(comm, decomp, state)
    return state


def read_restart_any(
    comm: Comm,
    path: str,
    backend: Backend | None = None,
    decomp: DomainDecomposition | None = None,
) -> ParticleState:
    """Restart a SION checkpoint on a *different* task count.

    The paper notes the multifile "can be accessed both from a parallel
    and a serial application"; this uses the serial global view from every
    analysis task — each reads a balanced slice of the written ranks — so
    a checkpoint from N tasks restarts on any M.  With ``decomp`` given,
    particles are migrated to their owning domains afterwards (the usual
    way to rebalance after such a restart).
    """
    from repro.sion import serial as sion_serial

    with sion_serial.open(path, "r", backend=backend) as sf:
        written_ranks = sf.ntasks
        base, extra = divmod(written_ranks, comm.size)
        start = comm.rank * base + min(comm.rank, extra)
        span = base + (1 if comm.rank < extra else 0)
        pieces = [sf.read_task(r) for r in range(start, start + span)]
    state = ParticleState.from_records(b"".join(pieces))
    if decomp is not None:
        state = migrate(comm, decomp, state)
    return state
