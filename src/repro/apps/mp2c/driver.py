"""Runnable MP2C-like simulation loop with periodic checkpointing.

Ties the pieces together the way the real code does: domain decomposition,
SRD solvent steps, optional MD solute integration, particle migration, and
checkpoint/restart through a selectable I/O method.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.mp2c.checkpoint import write_restart
from repro.apps.mp2c.decomposition import DomainDecomposition, migrate
from repro.apps.mp2c.md import BondedSystem, velocity_verlet
from repro.apps.mp2c.observables import rescale_to_temperature, temperature
from repro.apps.mp2c.particles import ParticleState
from repro.apps.mp2c.srd import srd_step
from repro.backends.base import Backend
from repro.errors import ReproError
from repro.simmpi.comm import Comm


@dataclass
class SimulationConfig:
    """Parameters of one mini-app run."""

    particles_per_task: int = 1000
    box: tuple[float, float, float] = (16.0, 16.0, 16.0)
    dt: float = 0.1
    cell_size: float = 1.0
    nsteps: int = 10
    checkpoint_every: int = 0  # 0 = never
    checkpoint_path: str = "restart.sion"
    checkpoint_method: str = "sion"
    checkpoint_nfiles: int = 1
    md_chains: int = 0  # polymer chains per task, integrated with MD
    md_beads: int = 4
    thermostat_every: int = 0  # 0 = off; else rescale every N steps
    target_temperature: float = 1.0
    seed: int = 42


@dataclass
class SimulationResult:
    """Per-task outcome: final state plus conservation diagnostics."""

    state: ParticleState
    momentum_drift: float
    checkpoints_written: int
    steps_run: int
    kinetic_energy: float = 0.0
    diagnostics: dict = field(default_factory=dict)


def run_simulation(
    comm: Comm, config: SimulationConfig, backend: Backend | None = None
) -> SimulationResult:
    """SPMD entry point: run ``config.nsteps`` SRD(+MD) steps.

    Collective over ``comm``.  Returns each task's result; global momentum
    drift is computed collectively and must stay at machine precision
    (SRD collisions conserve momentum exactly).
    """
    if config.nsteps < 0:
        raise ReproError("nsteps must be non-negative")
    decomp = DomainDecomposition.for_tasks(comm.size, config.box)
    rng = np.random.default_rng(config.seed + 1000 * comm.rank)
    state = ParticleState.random(
        config.particles_per_task,
        _domain_extent(decomp, comm.rank),
        seed=config.seed + comm.rank,
        id_offset=comm.rank * config.particles_per_task,
    )
    state = ParticleState(state.ids, state.pos + decomp.bounds_of(comm.rank)[0], state.vel)
    bonded = (
        BondedSystem.chains(config.md_chains, config.md_beads)
        if config.md_chains > 0
        else None
    )

    initial_momentum = np.asarray(comm.allreduce(state.momentum))
    checkpoints = 0
    for step in range(1, config.nsteps + 1):
        state = srd_step(state, config.dt, config.cell_size, rng=rng)
        if bonded is not None and state.n >= config.md_chains * config.md_beads:
            # Integrate the first chains' beads as bonded solute.
            nb = config.md_chains * config.md_beads
            solute = ParticleState(state.ids[:nb], state.pos[:nb], state.vel[:nb])
            solute = velocity_verlet(solute, bonded, config.dt)
            state.pos[:nb] = solute.pos
            state.vel[:nb] = solute.vel
        state = migrate(comm, decomp, state)
        if config.thermostat_every and step % config.thermostat_every == 0:
            state = rescale_to_temperature(state, config.target_temperature)
        if config.checkpoint_every and step % config.checkpoint_every == 0:
            write_restart(
                comm,
                f"{config.checkpoint_path}.step{step:06d}",
                state,
                method=config.checkpoint_method,
                backend=backend,
                nfiles=config.checkpoint_nfiles,
            )
            checkpoints += 1

    final_momentum = np.asarray(comm.allreduce(state.momentum))
    drift = float(np.abs(final_momentum - initial_momentum).max())
    return SimulationResult(
        state=state,
        momentum_drift=drift,
        checkpoints_written=checkpoints,
        steps_run=config.nsteps,
        kinetic_energy=state.kinetic_energy,
        diagnostics={
            "grid": decomp.grid,
            "local_particles": state.n,
            "temperature": temperature(state),
        },
    )


def _domain_extent(
    decomp: DomainDecomposition, rank: int
) -> tuple[float, float, float]:
    lo, hi = decomp.bounds_of(rank)
    ext = hi - lo
    return float(ext[0]), float(ext[1]), float(ext[2])
