"""MP2C-like mesoscopic particle dynamics mini-app (paper §5.1).

The real MP2C couples multi-particle collision dynamics (MPC, also known
as stochastic rotation dynamics) with molecular dynamics under an MPI
domain decomposition.  This mini-app implements the same structure —

* :mod:`repro.apps.mp2c.particles` — particle state and the 52-byte
  restart record,
* :mod:`repro.apps.mp2c.decomposition` — regular 3-D domain decomposition
  with ownership migration,
* :mod:`repro.apps.mp2c.srd` — the MPC streaming + cell-wise collision
  step (momentum-conserving),
* :mod:`repro.apps.mp2c.md` — a small velocity-Verlet MD integrator with
  harmonic bonds for embedded polymer chains,
* :mod:`repro.apps.mp2c.checkpoint` — restart-file I/O through three
  methods: ``singlefile`` (MP2C's original), ``tasklocal``, and ``sion``,
* :mod:`repro.apps.mp2c.driver` — a runnable simulation loop with
  periodic checkpointing.

Fig. 6 is about the checkpoint path; the physics here exists so the I/O
runs against a real, evolving particle state.
"""

from repro.apps.mp2c.checkpoint import read_restart, read_restart_any, write_restart
from repro.apps.mp2c.driver import SimulationConfig, run_simulation
from repro.apps.mp2c.particles import ParticleState, RECORD_BYTES

__all__ = [
    "ParticleState",
    "RECORD_BYTES",
    "read_restart",
    "read_restart_any",
    "write_restart",
    "SimulationConfig",
    "run_simulation",
]
