"""Minimal molecular-dynamics coupling: polymer chains with harmonic bonds.

MP2C couples the MPC solvent to molecular dynamics for embedded solutes
(colloids, polymers).  We implement the standard lightweight counterpart:
bead-spring chains integrated with velocity Verlet.  Forces are harmonic
bonds between consecutive beads; the solvent coupling happens by including
the beads in the SRD collision step (as in real MPC-MD hybrids).

Energy behaviour (bounded oscillation for a stable step size) and momentum
conservation are the tested invariants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.mp2c.particles import ParticleState
from repro.errors import ReproError


@dataclass(frozen=True)
class BondedSystem:
    """Harmonic-bond topology over a particle set.

    ``bonds`` is an ``(m, 2)`` array of particle-*index* pairs (into the
    local state), ``k`` the spring constant, ``r0`` the rest length.
    """

    bonds: np.ndarray
    k: float = 10.0
    r0: float = 1.0

    def __post_init__(self) -> None:
        b = np.asarray(self.bonds)
        if b.ndim != 2 or b.shape[1] != 2:
            raise ReproError(f"bonds must be (m, 2), got {b.shape}")
        if self.k < 0 or self.r0 < 0:
            raise ReproError("spring constant and rest length must be >= 0")

    @classmethod
    def chains(cls, n_chains: int, beads_per_chain: int, k: float = 10.0, r0: float = 1.0) -> "BondedSystem":
        """Linear chains: bead ``i`` bonds to ``i+1`` within each chain."""
        if n_chains < 0 or beads_per_chain < 1:
            raise ReproError("need non-negative chains of >= 1 bead")
        bonds = [
            (c * beads_per_chain + i, c * beads_per_chain + i + 1)
            for c in range(n_chains)
            for i in range(beads_per_chain - 1)
        ]
        return cls(bonds=np.asarray(bonds, dtype=np.int64).reshape(-1, 2), k=k, r0=r0)

    # -- forces and energies --------------------------------------------------

    def forces(self, pos: np.ndarray) -> np.ndarray:
        """Harmonic bond forces, shape ``(n, 3)``."""
        f = np.zeros_like(pos)
        if len(self.bonds) == 0:
            return f
        i, j = self.bonds[:, 0], self.bonds[:, 1]
        d = pos[j] - pos[i]
        r = np.linalg.norm(d, axis=1)
        r_safe = np.where(r > 0, r, 1.0)
        fmag = self.k * (r - self.r0)  # pull together when stretched
        fvec = (fmag / r_safe)[:, None] * d
        np.add.at(f, i, fvec)
        np.add.at(f, j, -fvec)
        return f

    def potential_energy(self, pos: np.ndarray) -> float:
        """Total harmonic bond energy."""
        if len(self.bonds) == 0:
            return 0.0
        i, j = self.bonds[:, 0], self.bonds[:, 1]
        r = np.linalg.norm(pos[j] - pos[i], axis=1)
        return float(0.5 * self.k * ((r - self.r0) ** 2).sum())


def velocity_verlet(
    state: ParticleState, system: BondedSystem, dt: float, nsteps: int = 1
) -> ParticleState:
    """Integrate the bonded system with velocity Verlet (unit masses)."""
    if dt <= 0:
        raise ReproError(f"time step must be positive: {dt}")
    if nsteps < 0:
        raise ReproError("nsteps must be non-negative")
    pos = state.pos.copy()
    vel = state.vel.copy()
    f = system.forces(pos)
    for _ in range(nsteps):
        vel += 0.5 * dt * f
        pos += dt * vel
        f = system.forces(pos)
        vel += 0.5 * dt * f
    return ParticleState(state.ids, pos, vel)


def total_energy(state: ParticleState, system: BondedSystem) -> float:
    """Kinetic + bond potential energy."""
    return state.kinetic_energy + system.potential_energy(state.pos)
