"""Particle state and the 52-byte restart record.

The paper notes MP2C stores **52 bytes per particle** in its restart
files; we use the natural encoding that produces exactly that:
``uint32`` particle id + 3 x ``float64`` position + 3 x ``float64``
velocity = 4 + 24 + 24 = 52 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

#: Bytes per particle in a restart record (paper §5.1).
RECORD_BYTES = 52

_ID_DTYPE = np.dtype("<u4")
_COORD_DTYPE = np.dtype("<f8")


@dataclass
class ParticleState:
    """A set of particles owned by one task.

    ``ids`` are globally unique; ``pos`` and ``vel`` are ``(n, 3)`` arrays.
    """

    ids: np.ndarray
    pos: np.ndarray
    vel: np.ndarray

    def __post_init__(self) -> None:
        self.ids = np.ascontiguousarray(self.ids, dtype=_ID_DTYPE)
        self.pos = np.ascontiguousarray(self.pos, dtype=_COORD_DTYPE)
        self.vel = np.ascontiguousarray(self.vel, dtype=_COORD_DTYPE)
        n = len(self.ids)
        if self.pos.shape != (n, 3) or self.vel.shape != (n, 3):
            raise ReproError(
                f"inconsistent particle arrays: ids={n}, pos={self.pos.shape}, "
                f"vel={self.vel.shape}"
            )

    @property
    def n(self) -> int:
        """Number of particles held."""
        return len(self.ids)

    @property
    def momentum(self) -> np.ndarray:
        """Total momentum (unit masses)."""
        return self.vel.sum(axis=0)

    @property
    def kinetic_energy(self) -> float:
        """Total kinetic energy (unit masses)."""
        return 0.5 * float((self.vel**2).sum())

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls) -> "ParticleState":
        return cls(
            ids=np.empty(0, dtype=_ID_DTYPE),
            pos=np.empty((0, 3), dtype=_COORD_DTYPE),
            vel=np.empty((0, 3), dtype=_COORD_DTYPE),
        )

    @classmethod
    def random(
        cls,
        n: int,
        box: tuple[float, float, float],
        temperature: float = 1.0,
        seed: int = 0,
        id_offset: int = 0,
    ) -> "ParticleState":
        """Uniform positions in ``box``, Maxwellian velocities."""
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0.0, 1.0, size=(n, 3)) * np.asarray(box)
        vel = rng.normal(0.0, np.sqrt(temperature), size=(n, 3))
        if n > 0:
            vel -= vel.mean(axis=0)  # zero net momentum
        ids = np.arange(id_offset, id_offset + n, dtype=_ID_DTYPE)
        return cls(ids=ids, pos=pos, vel=vel)

    # -- set operations ------------------------------------------------------

    def select(self, mask: np.ndarray) -> "ParticleState":
        """Subset by boolean mask (copies)."""
        return ParticleState(self.ids[mask].copy(), self.pos[mask].copy(), self.vel[mask].copy())

    @classmethod
    def concatenate(cls, parts: list["ParticleState"]) -> "ParticleState":
        """Merge particle sets (order preserved)."""
        parts = [p for p in parts if p.n > 0]
        if not parts:
            return cls.empty()
        return cls(
            ids=np.concatenate([p.ids for p in parts]),
            pos=np.concatenate([p.pos for p in parts]),
            vel=np.concatenate([p.vel for p in parts]),
        )

    def sorted_by_id(self) -> "ParticleState":
        """Canonical ordering, for state comparison in tests."""
        order = np.argsort(self.ids, kind="stable")
        return ParticleState(self.ids[order], self.pos[order], self.vel[order])

    # -- restart records --------------------------------------------------------

    def to_records(self) -> bytes:
        """Pack into the 52-byte-per-particle restart format."""
        out = bytearray(self.n * RECORD_BYTES)
        view = np.frombuffer(out, dtype=np.uint8).reshape(self.n, RECORD_BYTES)
        view[:, :4] = self.ids.view(np.uint8).reshape(self.n, 4)
        view[:, 4:28] = self.pos.view(np.uint8).reshape(self.n, 24)
        view[:, 28:52] = self.vel.view(np.uint8).reshape(self.n, 24)
        return bytes(out)

    @classmethod
    def from_records(cls, raw: bytes) -> "ParticleState":
        """Unpack a restart record stream."""
        if len(raw) % RECORD_BYTES:
            raise ReproError(
                f"restart data length {len(raw)} is not a multiple of "
                f"{RECORD_BYTES}"
            )
        n = len(raw) // RECORD_BYTES
        view = np.frombuffer(bytearray(raw), dtype=np.uint8).reshape(n, RECORD_BYTES)
        ids = view[:, :4].copy().view(_ID_DTYPE).reshape(n)
        pos = view[:, 4:28].copy().view(_COORD_DTYPE).reshape(n, 3)
        vel = view[:, 28:52].copy().view(_COORD_DTYPE).reshape(n, 3)
        return cls(ids=ids, pos=pos, vel=vel)


def equal_states(a: ParticleState, b: ParticleState) -> bool:
    """Exact equality up to particle order (checkpoint roundtrip check)."""
    if a.n != b.n:
        return False
    sa, sb = a.sorted_by_id(), b.sorted_by_id()
    return (
        bool(np.array_equal(sa.ids, sb.ids))
        and bool(np.array_equal(sa.pos, sb.pos))
        and bool(np.array_equal(sa.vel, sb.vel))
    )
