"""``scale`` suite: the control plane at paper-scale task counts.

The paper's headline results run at 4k-64k tasks; these scenarios drive
the *real* library (collective open/write/close over the simulated store,
serial metadata scans, bare collectives) at 4k-256k simulated tasks using
the bulk SPMD engine, and record wall clock plus deterministic geometry
facts as gated metrics.

The ``taskbw`` family is the suite's *data plane* counterpart: a small
world of real OS processes (``engine="proc"``) streams real bytes
through :class:`~repro.backends.localfs.LocalBackend` into a tempdir
multifile, and the gated metric is aggregate write bandwidth.  Unlike
the simulated control-plane points its walls are hardware-dependent, so
its grid is deliberately tiny (1/2/4 workers, tens of MB per task —
sized to stay inside the page cache so the engines are measured, not
the disk's writeback behavior).

Committed baselines backing the suite:

* ``benchmarks/baselines/scale_preopt.json`` — the pre-optimization
  control plane (thread-per-rank engine, scalar metadata paths), captured
  by ``benchmarks/tools/record_scale_preopt.py`` before the bulk engine
  landed.  Points the old engine could not finish carry their wall budget
  as a recorded *floor* (``lower_bound`` in their params), so speedups
  computed against them are conservative.  The 64k open/close point is a
  floor because the thread engine could not even spawn that many ranks.
* ``benchmarks/baselines/scale.json`` / ``scale_ci.json`` — the current
  implementation; CI gates the reduced ``ci-grid`` (4k/16k) against
  ``scale_ci.json`` with a generous threshold (wall clock on shared
  runners is noisy; only algorithmic regressions should trip it).
* ``benchmarks/baselines/scale_taskbw.json`` /
  ``scale_taskbw_preopt.json`` — the data-plane family under the proc
  engine and its thread-engine (single-GIL) reference, captured by
  ``benchmarks/tools/record_taskbw_baseline.py``; CI gates the former
  slice of the same ``ci-grid`` run with ``--baseline-only``.

All scenarios honor ``REPRO_SPMD_TIMEOUT`` (see ``repro.simmpi.runner``):
on very slow machines raise it before running the 256k points.
"""

from __future__ import annotations

import time

from repro.backends.simfs_backend import SimBackend
from repro.bench.registry import scenario
from repro.bench.results import Metric, ScenarioOutput
from repro.fs.simfs import SimFS

KiB = 1024

#: Task counts of the full grid; the first two form the CI grid.
SCALE_TASK_COUNTS = (4096, 16384, 65536, 262144)
CI_TASK_COUNTS = frozenset((4096, 16384))

#: Common geometry: one FS block per chunk keeps the files small while
#: still exercising every alignment and accounting path.
FSBLK = 4 * KiB
CHUNKSIZE = 4 * KiB
PAYLOAD = 64

#: Collective families measured by ``scale/collectives``.
COLLECTIVE_OPS = ("bcast", "gather", "scatter", "reduce", "barrier", "allgather")


def _tags(family: str, ntasks: int) -> tuple[str, ...]:
    tags = ["scale", "control-plane", family]
    if ntasks in CI_TASK_COUNTS:
        tags.append("ci-grid")
    return tuple(tags)


def _backend() -> SimBackend:
    return SimBackend(SimFS(blocksize_override=FSBLK))


def expected_geometry(ntasks: int, chunksize: int, fsblk: int) -> tuple[int, int]:
    """Closed-form byte offsets of the scenario's single-file layout.

    Independent arithmetic (not :class:`~repro.sion.layout.ChunkLayout`):
    metablock 1 is the 56-byte header, two u64 arrays and the u32 mapping
    kind; data starts at the next FS block; with one block of one aligned
    chunk per task, metablock 2 follows the block array immediately.
    Every grid point asserts against this, so geometry drift fails the
    scenario itself — the wall-clock gate's wide threshold never sees it.
    """
    mb1_size = 56 + 16 * ntasks + 4
    start_of_data = -(-mb1_size // fsblk) * fsblk
    aligned_chunk = max(-(-chunksize // fsblk), 1) * fsblk
    return start_of_data, start_of_data + ntasks * aligned_chunk


# --------------------------------------------------------------------------
# Collective open / write / close at scale (the paper's paropen+parclose).


def _paropen_parclose(ctx) -> ScenarioOutput:
    from repro.simmpi import run_spmd
    from repro.sion import paropen, serial

    p = ctx.params
    ntasks = p["ntasks"]
    backend = _backend()
    payload = bytes([0xAB]) * p["payload_bytes"]

    def program(comm):
        f = paropen(
            "/scale.sion",
            "w",
            comm,
            chunksize=p["chunksize"],
            fsblksize=p["fsblksize"],
            backend=backend,
        )
        f.fwrite(payload)
        f.parclose()
        return (f.layout.start_of_data, f.mb1.metablock2_offset)

    t0 = time.perf_counter()
    out = run_spmd(ntasks, program, engine=p["engine"])
    wall = time.perf_counter() - t0
    start_of_data, mb2_offset = out[0]
    if (start_of_data, mb2_offset) != expected_geometry(
        ntasks, p["chunksize"], p["fsblksize"]
    ):
        raise AssertionError(
            f"on-disk geometry drifted: ({start_of_data}, {mb2_offset}) != "
            f"{expected_geometry(ntasks, p['chunksize'], p['fsblksize'])}"
        )

    # Spot-check the multifile through the serial global view: corner
    # ranks must round-trip their payload through the on-disk metadata.
    with serial.open("/scale.sion", "r", backend=backend) as f:
        for rank in (0, ntasks // 2, ntasks - 1):
            got = f.read_task(rank)
            if got != payload:
                raise AssertionError(
                    f"rank {rank} round-tripped {len(got)} unexpected bytes"
                )

    metrics = {
        "open_close_wall_s": Metric(wall, "s", "lower"),
        "tasks_per_s": Metric(ntasks / wall, "tasks/s", "info"),
        "start_of_data_bytes": Metric(float(start_of_data), "bytes", "lower"),
        "mb2_offset_bytes": Metric(float(mb2_offset), "bytes", "lower"),
    }
    text = (
        f"{ntasks} tasks open/write({p['payload_bytes']} B)/close via "
        f"engine={p['engine']}: {wall:.2f} s ({ntasks / wall:,.0f} tasks/s); "
        f"metablock 1 spans {start_of_data // KiB} KiB, metablock 2 at "
        f"{mb2_offset / (1 << 20):.1f} MiB"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw={"wall": wall})


# --------------------------------------------------------------------------
# Serial-tool metadata scan: create a huge multifile serially, then load
# the complete geometry the way sionconfig/defragmentation tools do.


def _serial_scan(ctx) -> ScenarioOutput:
    from repro.sion import serial

    p = ctx.params
    ntasks = p["ntasks"]
    backend = _backend()
    # ``writers`` ranks spread evenly across the rank space (always
    # including the first and last rank) get a payload; the scan must
    # account exactly their bytes.
    nwriters = p["writers"]
    writers = sorted({round(i * (ntasks - 1) / max(nwriters - 1, 1)) for i in range(nwriters)})

    t0 = time.perf_counter()
    f = serial.open(
        "/scan.sion",
        "w",
        chunksizes=[p["chunksize"]] * ntasks,
        fsblksize=p["fsblksize"],
        nfiles=p["nfiles"],
        backend=backend,
    )
    for rank in writers:
        f.seek(rank, 0, 0)
        f.write(b"\xab" * p["payload_bytes"])
    f.close()
    create_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    g = serial.open("/scan.sion", "r", backend=backend)
    loc = g.get_locations()
    total = loc.total_bytes()
    g.close()
    scan_wall = time.perf_counter() - t0
    if total != p["payload_bytes"] * len(writers):
        raise AssertionError(f"metadata scan saw {total} logical bytes")

    metrics = {
        "create_wall_s": Metric(create_wall, "s", "lower"),
        "scan_wall_s": Metric(scan_wall, "s", "lower"),
        "logical_total_bytes": Metric(float(total), "bytes", "lower"),
    }
    text = (
        f"{ntasks}-task multifile over {p['nfiles']} physical files: serial "
        f"create {create_wall * 1e3:.0f} ms, full metadata scan "
        f"{scan_wall * 1e3:.0f} ms"
    )
    return ScenarioOutput(
        metrics=metrics, text=text, raw={"create": create_wall, "scan": scan_wall}
    )


# --------------------------------------------------------------------------
# Bare collective microbenchmarks: one whole-world round per op family,
# timed end to end (world setup + the collective + teardown).  Unlike the
# open/close cycle these have no pre-optimization analogue: the old
# engine's in-program per-op timings do not survive the change of
# execution model, so the family is gated only against the current
# baseline.


def _collectives(ctx) -> ScenarioOutput:
    from repro.simmpi import run_spmd

    p = ctx.params
    ntasks, engine = p["ntasks"], p["engine"]

    programs = {
        "bcast": lambda c: c.bcast("payload" if c.rank == 0 else None),
        "gather": lambda c: c.gather(c.rank),
        "scatter": lambda c: c.scatter(
            list(range(c.size)) if c.rank == 0 else None
        ),
        "reduce": lambda c: c.reduce(1),
        "barrier": lambda c: c.barrier(),
        "allgather": lambda c: c.allgather(c.rank),
    }
    metrics: dict[str, Metric] = {}
    lines = []
    for op in COLLECTIVE_OPS:
        best = float("inf")
        for _ in range(p["rounds"]):
            t0 = time.perf_counter()
            run_spmd(ntasks, programs[op], engine=engine)
            best = min(best, time.perf_counter() - t0)
        metrics[f"{op}_wall_s"] = Metric(best, "s", "lower")
        lines.append(f"{op:<9} {best * 1e3:8.1f} ms")
    text = f"{ntasks}-rank whole-world rounds (engine={engine}):\n" + "\n".join(lines)
    return ScenarioOutput(metrics=metrics, text=text)


# --------------------------------------------------------------------------
# Task-local write bandwidth on real cores: the data plane the process
# engine exists for.  Each worker streams its task-local pieces into a
# shared multifile over LocalBackend; the gated figure is aggregate MB/s
# across the world.  Per-task volume stays small enough (<< dirty-page
# thresholds) that every round lands in the page cache — the scenario
# measures the engines' data paths, not the disk.

#: Worker grid of the ``taskbw`` family and its per-task write volume.
TASKBW_WORKERS = (1, 2, 4)
TASKBW_TASK_MB = 32


def _taskbw_program(comm, path, npieces, piece_bytes, chunksize, fsblksize):
    """Rank body: stream ``npieces`` task-local pieces and parclose.

    Module-level (not a closure) so the spawn start method can pickle it;
    every input is an int or a string for the same reason.
    """
    from repro.backends.localfs import LocalBackend
    from repro.sion import paropen

    piece = bytes([0x40 + comm.rank]) * piece_bytes
    f = paropen(
        path,
        "w",
        comm,
        chunksize=chunksize,
        fsblksize=fsblksize,
        backend=LocalBackend(),
    )
    for _ in range(npieces):
        f.fwrite(piece)
    f.parclose()
    return npieces * piece_bytes


def _taskbw(ctx) -> ScenarioOutput:
    import os
    import tempfile

    from repro.backends.localfs import LocalBackend
    from repro.simmpi import run_spmd
    from repro.sion import serial

    p = ctx.params
    workers = p["workers"]
    piece_bytes = p["piece_kib"] * KiB
    npieces = p["task_mb"] * KiB // p["piece_kib"]
    per_task = npieces * piece_bytes
    total_mb = per_task * workers / (1 << 20)

    best = float("inf")
    with tempfile.TemporaryDirectory(prefix="repro-taskbw-") as base:
        path = os.path.join(base, "bw.sion")
        for rnd in range(p["rounds"]):
            t0 = time.perf_counter()
            out = run_spmd(
                workers,
                _taskbw_program,
                path,
                npieces,
                piece_bytes,
                p["chunksize"],
                p["fsblksize"],
                engine=p["engine"],
            )
            best = min(best, time.perf_counter() - t0)
            if out != [per_task] * workers:
                raise AssertionError(f"ranks reported {out}, expected {per_task} each")
            if rnd != p["rounds"] - 1:
                # Dropping the file between rounds discards its dirty pages,
                # so repeated rounds never accumulate writeback pressure.
                os.unlink(path)

        # Round-trip the last file through the serial global view: exact
        # logical volume, and the last rank's bytes byte-for-byte.
        with serial.open(path, "r", backend=LocalBackend()) as f:
            total = f.get_locations().total_bytes()
            if total != per_task * workers:
                raise AssertionError(f"multifile holds {total} logical bytes")
            got = f.read_task(workers - 1)
            if got != bytes([0x40 + workers - 1]) * per_task:
                raise AssertionError(f"rank {workers - 1} round-tripped bad bytes")

    agg = total_mb / best
    metrics = {
        "write_wall_s": Metric(best, "s", "lower"),
        "agg_mb_per_s": Metric(agg, "MB/s", "higher"),
        "per_task_mb": Metric(float(p["task_mb"]), "MB", "info"),
    }
    text = (
        f"{workers} worker(s) x {p['task_mb']} MB task-local writes "
        f"({p['piece_kib']} KiB pieces) via engine={p['engine']}: best of "
        f"{p['rounds']} rounds {best:.3f} s = {agg:,.0f} MB/s aggregate"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw={"wall": best})


# --------------------------------------------------------------------------
# Registration: one scenario per (family, ntasks) so the CI grid can be
# selected by tag (fnmatch reads the bracketed grid names as character
# classes, so tags are the reliable selector).

for _n in SCALE_TASK_COUNTS:
    scenario(
        f"scale/paropen-parclose[ntasks={_n}]",
        suite="scale",
        tags=_tags("paropen-parclose", _n),
        params={
            "ntasks": _n,
            "chunksize": CHUNKSIZE,
            "fsblksize": FSBLK,
            "nfiles": 1,
            "payload_bytes": PAYLOAD,
            "engine": "bulk",
        },
    )(_paropen_parclose)
    scenario(
        f"scale/serial-scan[ntasks={_n}]",
        suite="scale",
        tags=_tags("serial-scan", _n),
        params={
            "ntasks": _n,
            "chunksize": CHUNKSIZE,
            "fsblksize": FSBLK,
            "nfiles": 4,
            "payload_bytes": PAYLOAD,
            "writers": 3,
        },
    )(_serial_scan)
    scenario(
        f"scale/collectives[ntasks={_n}]",
        suite="scale",
        tags=_tags("collectives", _n),
        params={"ntasks": _n, "rounds": 1, "engine": "bulk"},
    )(_collectives)

for _w in TASKBW_WORKERS:
    scenario(
        f"scale/taskbw[workers={_w}]",
        suite="scale",
        # Always part of the CI grid: the whole family finishes in a few
        # seconds, and the scaling claim needs the 1- and 4-worker points
        # in the same run.
        tags=("scale", "data-plane", "taskbw", "ci-grid"),
        params={
            "workers": _w,
            "task_mb": TASKBW_TASK_MB,
            "piece_kib": 32,
            "chunksize": 256 * KiB,
            "fsblksize": FSBLK,
            "rounds": 2,
            "engine": "proc",
        },
    )(_taskbw)
