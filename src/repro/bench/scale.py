"""``scale`` suite: the control plane at paper-scale task counts.

The paper's headline results run at 4k-64k tasks; these scenarios drive
the *real* library (collective open/write/close over the simulated store,
serial metadata scans, bare collectives) at 4k-256k simulated tasks using
the bulk SPMD engine, and record wall clock plus deterministic geometry
facts as gated metrics.

The ``taskbw`` family is the suite's *data plane* counterpart: a small
world of real OS processes (``engine="proc"``) streams real bytes
through :class:`~repro.backends.localfs.LocalBackend` into a tempdir
multifile, and the gated metric is aggregate write bandwidth.  Unlike
the simulated control-plane points its walls are hardware-dependent, so
its grid is deliberately tiny (1/2/4 workers, tens of MB per task —
sized to stay inside the page cache so the engines are measured, not
the disk's writeback behavior).

Committed baselines backing the suite:

* ``benchmarks/baselines/scale_preopt.json`` — the pre-optimization
  control plane (thread-per-rank engine, scalar metadata paths), captured
  by ``benchmarks/tools/record_scale_preopt.py`` before the bulk engine
  landed.  Points the old engine could not finish carry their wall budget
  as a recorded *floor* (``lower_bound`` in their params), so speedups
  computed against them are conservative.  The 64k open/close point is a
  floor because the thread engine could not even spawn that many ranks.
* ``benchmarks/baselines/scale.json`` / ``scale_ci.json`` — the current
  implementation; CI gates the reduced ``ci-grid`` (4k/16k) against
  ``scale_ci.json`` with a generous threshold (wall clock on shared
  runners is noisy; only algorithmic regressions should trip it).
* ``benchmarks/baselines/scale_taskbw.json`` /
  ``scale_taskbw_preopt.json`` — the data-plane family under the proc
  engine and its thread-engine (single-GIL) reference, captured by
  ``benchmarks/tools/record_taskbw_baseline.py``; CI gates the former
  slice of the same ``ci-grid`` run with ``--baseline-only``.

All scenarios honor ``REPRO_SPMD_TIMEOUT`` (see ``repro.simmpi.runner``):
on very slow machines raise it before running the 256k points.
"""

from __future__ import annotations

import gc
import json
import sys
import time
from pathlib import Path

from repro.backends.simfs_backend import SimBackend
from repro.bench.registry import scenario
from repro.bench.results import Metric, ScenarioOutput
from repro.fs.simfs import SimFS

KiB = 1024

#: Task counts of the full grid; the first two form the CI grid.
SCALE_TASK_COUNTS = (4096, 16384, 65536, 262144)
CI_TASK_COUNTS = frozenset((4096, 16384))

#: The headline nightly-only point: 2^20 tasks through one collective
#: open/write/close cycle.  Kept out of :data:`SCALE_TASK_COUNTS` so the
#: serial-scan and collectives grids keep their 4k-256k shape; the point
#: carries the ``nightly-1m`` tag instead of ``ci-grid`` (the PR gate
#: stays on the 4k/16k slice; the nightly full-suite run picks it up).
NIGHTLY_TASK_COUNT = 1 << 20

#: In-scenario O(1)-objects-per-rank pin for the bulk engine: the cycle
#: must not retain more than this many live python allocator blocks per
#: rank once the world is torn down (~15 measured — the per-rank result
#: tuples plus amortized engine state; a return of per-rank op logs
#: costs hundreds).  The precise figure is also a gated metric.
MAX_BLOCKS_PER_RANK = 64.0

#: Common geometry: one FS block per chunk keeps the files small while
#: still exercising every alignment and accounting path.
FSBLK = 4 * KiB
CHUNKSIZE = 4 * KiB
PAYLOAD = 64

#: Collective families measured by ``scale/collectives``.
COLLECTIVE_OPS = ("bcast", "gather", "scatter", "reduce", "barrier", "allgather")


def _tags(family: str, ntasks: int) -> tuple[str, ...]:
    tags = ["scale", "control-plane", family]
    if ntasks in CI_TASK_COUNTS:
        tags.append("ci-grid")
    return tuple(tags)


def _backend() -> SimBackend:
    return SimBackend(SimFS(blocksize_override=FSBLK))


def multifile_fingerprint(backend: SimBackend, base_path: str, nfiles: int = 1) -> str:
    """sha256 over the exact content of every physical file of a multifile.

    Hashes, per physical file in mapping order, the file size plus each
    materialized ``(offset, bytes)`` extent run (holes contribute nothing,
    so sparse layouts hash cheaply at any scale).  Two multifiles share a
    fingerprint iff they are byte-identical, which is what the engine
    byte-identity pin (``benchmarks/baselines/scale_multifile_hashes.json``)
    compares across engine generations.
    """
    import hashlib

    from repro.sion.mapping import physical_path

    h = hashlib.sha256()
    for filenum in range(nfiles):
        path = physical_path(base_path, filenum)
        size, extents = backend.fs.extents_of(path)
        h.update(b"file %d size %d\n" % (filenum, size))
        handle = backend.open(path, "rb")
        try:
            for offset, length in extents:
                h.update(b"@%d+%d:" % (offset, length))
                h.update(handle.pread(offset, length))
        finally:
            handle.close()
    return h.hexdigest()


def expected_geometry(ntasks: int, chunksize: int, fsblk: int) -> tuple[int, int]:
    """Closed-form byte offsets of the scenario's single-file layout.

    Independent arithmetic (not :class:`~repro.sion.layout.ChunkLayout`):
    metablock 1 is the 56-byte header, two u64 arrays and the u32 mapping
    kind; data starts at the next FS block; with one block of one aligned
    chunk per task, metablock 2 follows the block array immediately.
    Every grid point asserts against this, so geometry drift fails the
    scenario itself — the wall-clock gate's wide threshold never sees it.
    """
    mb1_size = 56 + 16 * ntasks + 4
    start_of_data = -(-mb1_size // fsblk) * fsblk
    aligned_chunk = max(-(-chunksize // fsblk), 1) * fsblk
    return start_of_data, start_of_data + ntasks * aligned_chunk


_HASH_PINS: dict | None = None


def _hash_pins() -> dict:
    """Recorded per-``ntasks`` fingerprints of the byte-identity baseline.

    Loads ``benchmarks/baselines/scale_multifile_hashes.json`` (captured
    with the pre-wave-vectorization engine by
    ``benchmarks/tools/record_scale_fingerprints.py``) once per process.
    Returns ``{}`` when the repo checkout is not present (installed
    package run outside the tree) — the pin is then simply not applied.
    """
    global _HASH_PINS
    if _HASH_PINS is None:
        path = (
            Path(__file__).resolve().parents[3]
            / "benchmarks"
            / "baselines"
            / "scale_multifile_hashes.json"
        )
        try:
            _HASH_PINS = json.loads(path.read_text())["points"]
        except (OSError, KeyError, ValueError):
            _HASH_PINS = {}
    return _HASH_PINS


def _reset_peak_rss() -> None:
    """Reset the kernel's peak-RSS watermark for this process (Linux).

    Writing ``5`` to ``/proc/self/clear_refs`` zeroes ``VmHWM``, making
    the subsequent :func:`_peak_rss_mb` a *per-scenario* peak rather than
    a whole-process one.  Silently a no-op elsewhere — the metric then
    reports the process high-water mark, which is still an upper bound.
    """
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
    except OSError:
        pass


def _peak_rss_mb() -> float:
    """Peak resident set in MiB: ``VmHWM`` when available, else getrusage."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


#: Whole-world wave sequence of one nfiles=1 open/write/close cycle under
#: the bulk engine: paropen's chunksize gather and geometry bcast, then
#: parclose's blocktable gather and final barrier.
_CYCLE_WAVES = ("gather", "bcast", "gather", "barrier")


def _phase_metrics(stats: dict, ntasks: int, t0_mono: float) -> dict[str, Metric]:
    """Per-phase wall breakdown from the engine's wave completion log.

    The bulk engine timestamps every collective wave (creation and last
    consumption, ``time.monotonic``).  For the standard cycle the four
    whole-world waves bracket the phases: the open phase ends when the
    geometry bcast drains, the write phase (task-local fwrites replayed
    between open and close) ends when the blocktable gather drains, and
    the close phase runs to the final barrier.  ``collective_wait_s``
    sums every wave's open-to-drain span — the aggregate time some rank
    spent parked — and is informational (spans overlap wall time).
    """
    waves = [w for w in stats.get("waves", ()) if w[0] == ntasks]
    out: dict[str, Metric] = {}
    if not waves or stats.get("waves_dropped"):
        return out
    out["collective_wait_s"] = Metric(
        sum(t_done - t_open for _, _, t_open, t_done in waves), "s", "info"
    )
    waves.sort(key=lambda w: w[3])
    if tuple(w[1] for w in waves) != _CYCLE_WAVES:
        return out
    open_s = waves[1][3] - t0_mono
    write_s = waves[2][3] - waves[1][3]
    close_s = waves[3][3] - waves[2][3]
    out["phase_open_s"] = Metric(open_s, "s", "lower")
    out["phase_write_s"] = Metric(write_s, "s", "lower")
    out["phase_close_s"] = Metric(close_s, "s", "lower")
    return out


# --------------------------------------------------------------------------
# Collective open / write / close at scale (the paper's paropen+parclose).


def _paropen_parclose(ctx) -> ScenarioOutput:
    from repro.simmpi import run_spmd
    from repro.sion import paropen, serial

    p = ctx.params
    ntasks = p["ntasks"]
    backend = _backend()
    payload = bytes([0xAB]) * p["payload_bytes"]

    def program(comm):
        f = paropen(
            "/scale.sion",
            "w",
            comm,
            chunksize=p["chunksize"],
            fsblksize=p["fsblksize"],
            backend=backend,
        )
        f.fwrite(payload)
        f.parclose()
        return (f.layout.start_of_data, f.mb1.metablock2_offset)

    stats: dict = {}
    gc.collect()
    blocks_before = sys.getallocatedblocks()
    _reset_peak_rss()
    t0_mono = time.monotonic()
    t0 = time.perf_counter()
    out = run_spmd(ntasks, program, engine=p["engine"], engine_stats=stats)
    wall = time.perf_counter() - t0
    gc.collect()
    blocks_per_rank = (sys.getallocatedblocks() - blocks_before) / ntasks
    peak_rss_mb = _peak_rss_mb()
    if blocks_per_rank > MAX_BLOCKS_PER_RANK:
        raise AssertionError(
            f"bulk cycle retains {blocks_per_rank:.1f} python blocks per rank "
            f"(> {MAX_BLOCKS_PER_RANK:.0f}); engine state is no longer O(1) "
            "objects per rank"
        )
    start_of_data, mb2_offset = out[0]
    if (start_of_data, mb2_offset) != expected_geometry(
        ntasks, p["chunksize"], p["fsblksize"]
    ):
        raise AssertionError(
            f"on-disk geometry drifted: ({start_of_data}, {mb2_offset}) != "
            f"{expected_geometry(ntasks, p['chunksize'], p['fsblksize'])}"
        )

    # Spot-check the multifile through the serial global view: corner
    # ranks must round-trip their payload through the on-disk metadata.
    with serial.open("/scale.sion", "r", backend=backend) as f:
        for rank in (0, ntasks // 2, ntasks - 1):
            got = f.read_task(rank)
            if got != payload:
                raise AssertionError(
                    f"rank {rank} round-tripped {len(got)} unexpected bytes"
                )

    # Byte-identity pin: the multifile's content fingerprint must match
    # the recorded pre-wave-vectorization capture exactly at every grid
    # point the baseline knows — an engine rewrite may move wall clock,
    # never bytes.  (Extent-run hashing keeps this cheap even at 2^20
    # tasks; unrecorded points still report their hash for future pins.)
    digest = multifile_fingerprint(backend, "/scale.sion", nfiles=p["nfiles"])
    pin = _hash_pins().get(str(ntasks))
    if pin is not None and digest != pin["sha256"]:
        raise AssertionError(
            f"multifile bytes drifted at ntasks={ntasks}: sha256 {digest} != "
            f"recorded {pin['sha256']} "
            "(benchmarks/baselines/scale_multifile_hashes.json)"
        )

    metrics = {
        "open_close_wall_s": Metric(wall, "s", "lower"),
        "tasks_per_s": Metric(ntasks / wall, "tasks/s", "info"),
        "start_of_data_bytes": Metric(float(start_of_data), "bytes", "lower"),
        "mb2_offset_bytes": Metric(float(mb2_offset), "bytes", "lower"),
        "peak_rss_mb": Metric(peak_rss_mb, "MiB", "lower"),
        "py_blocks_per_rank": Metric(blocks_per_rank, "blocks", "lower"),
    }
    metrics.update(_phase_metrics(stats, ntasks, t0_mono))
    phases = ""
    if "phase_open_s" in metrics:
        phases = (
            f"; phases open {metrics['phase_open_s'].value:.2f} / write "
            f"{metrics['phase_write_s'].value:.2f} / close "
            f"{metrics['phase_close_s'].value:.2f} s"
        )
    text = (
        f"{ntasks} tasks open/write({p['payload_bytes']} B)/close via "
        f"engine={p['engine']}: {wall:.2f} s ({ntasks / wall:,.0f} tasks/s); "
        f"metablock 1 spans {start_of_data // KiB} KiB, metablock 2 at "
        f"{mb2_offset / (1 << 20):.1f} MiB{phases}; peak RSS "
        f"{peak_rss_mb:,.0f} MiB, {blocks_per_rank:.1f} live blocks/rank; "
        f"sha256 {digest[:16]}... "
        f"({'pinned' if pin is not None else 'no recorded pin'})"
    )
    return ScenarioOutput(
        metrics=metrics, text=text, raw={"wall": wall, "sha256": digest}
    )


# --------------------------------------------------------------------------
# Serial-tool metadata scan: create a huge multifile serially, then load
# the complete geometry the way sionconfig/defragmentation tools do.


def _serial_scan(ctx) -> ScenarioOutput:
    from repro.sion import serial

    p = ctx.params
    ntasks = p["ntasks"]
    backend = _backend()
    # ``writers`` ranks spread evenly across the rank space (always
    # including the first and last rank) get a payload; the scan must
    # account exactly their bytes.
    nwriters = p["writers"]
    writers = sorted({round(i * (ntasks - 1) / max(nwriters - 1, 1)) for i in range(nwriters)})

    t0 = time.perf_counter()
    f = serial.open(
        "/scan.sion",
        "w",
        chunksizes=[p["chunksize"]] * ntasks,
        fsblksize=p["fsblksize"],
        nfiles=p["nfiles"],
        backend=backend,
    )
    for rank in writers:
        f.seek(rank, 0, 0)
        f.write(b"\xab" * p["payload_bytes"])
    f.close()
    create_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    g = serial.open("/scan.sion", "r", backend=backend)
    loc = g.get_locations()
    total = loc.total_bytes()
    g.close()
    scan_wall = time.perf_counter() - t0
    if total != p["payload_bytes"] * len(writers):
        raise AssertionError(f"metadata scan saw {total} logical bytes")

    metrics = {
        "create_wall_s": Metric(create_wall, "s", "lower"),
        "scan_wall_s": Metric(scan_wall, "s", "lower"),
        "logical_total_bytes": Metric(float(total), "bytes", "lower"),
    }
    text = (
        f"{ntasks}-task multifile over {p['nfiles']} physical files: serial "
        f"create {create_wall * 1e3:.0f} ms, full metadata scan "
        f"{scan_wall * 1e3:.0f} ms"
    )
    return ScenarioOutput(
        metrics=metrics, text=text, raw={"create": create_wall, "scan": scan_wall}
    )


# --------------------------------------------------------------------------
# Bare collective microbenchmarks: one whole-world round per op family,
# timed end to end (world setup + the collective + teardown).  Unlike the
# open/close cycle these have no pre-optimization analogue: the old
# engine's in-program per-op timings do not survive the change of
# execution model, so the family is gated only against the current
# baseline.


def _collectives(ctx) -> ScenarioOutput:
    from repro.simmpi import run_spmd

    p = ctx.params
    ntasks, engine = p["ntasks"], p["engine"]

    programs = {
        "bcast": lambda c: c.bcast("payload" if c.rank == 0 else None),
        "gather": lambda c: c.gather(c.rank),
        "scatter": lambda c: c.scatter(
            list(range(c.size)) if c.rank == 0 else None
        ),
        "reduce": lambda c: c.reduce(1),
        "barrier": lambda c: c.barrier(),
        "allgather": lambda c: c.allgather(c.rank),
    }
    metrics: dict[str, Metric] = {}
    lines = []
    for op in COLLECTIVE_OPS:
        best = float("inf")
        for _ in range(p["rounds"]):
            t0 = time.perf_counter()
            run_spmd(ntasks, programs[op], engine=engine)
            best = min(best, time.perf_counter() - t0)
        metrics[f"{op}_wall_s"] = Metric(best, "s", "lower")
        lines.append(f"{op:<9} {best * 1e3:8.1f} ms")
    text = f"{ntasks}-rank whole-world rounds (engine={engine}):\n" + "\n".join(lines)
    return ScenarioOutput(metrics=metrics, text=text)


# --------------------------------------------------------------------------
# Contention-model sweep over the 1M-task layout: what would the cycle's
# on-disk geometry cost on the paper's real file systems?  Pure model
# evaluation (LockContentionModel / StripingPolicy) over the exact
# ChunkLayout arithmetic the suite writes with — no SPMD run — so the
# scenario is fast enough to ride every grid and the assertions are
# deterministic.


def _contention_sweep(ctx) -> ScenarioOutput:
    from repro.bench.scenarios import ALIGNMENT_SWEEP_BLKSIZES
    from repro.fs.locks import alignment_speedup, blocks_shared_by_layout, mean_sharers
    from repro.fs.striping import aggregate_stripe_bandwidth, expected_coverage
    from repro.fs.systems import jaguar, jugene
    from repro.sion.layout import ChunkLayout

    p = ctx.params
    ntasks = p["ntasks"]
    window = p["layout_window"]
    gpfs = jugene()
    model = gpfs.lock_model
    true_blk = gpfs.fs_block_size

    metrics: dict[str, Metric] = {}
    lines = [
        f"{ntasks} one-chunk tasks on {gpfs.name} (GPFS {true_blk // KiB} KiB "
        "blocks), SION alignment swept downward:",
        "align KiB  sharers/blk  write speedup  read speedup",
    ]
    speedups_w: list[float] = []
    speedups_r: list[float] = []
    for align in ALIGNMENT_SWEEP_BLKSIZES:
        # The actual layout the suite would write at this alignment: one
        # aligned chunk per task.  Geometry is uniform, so the sharing
        # pattern is periodic — an exact count over a window of the full
        # layout must match the analytic sharers everywhere.
        lay = ChunkLayout(align, [align] * ntasks, 0)
        starts = [lay.start_of_data + off for off in lay.chunk_prefix[:window]]
        ends = [s + size for s, size in zip(starts, lay.aligned_sizes[:window])]
        k_exact = mean_sharers(blocks_shared_by_layout(starts, ends, true_blk))
        k_model = model.sharers_per_block(align, true_blk)
        if abs(k_exact - k_model) > 1e-9 * k_model:
            raise AssertionError(
                f"analytic sharers {k_model} != layout count {k_exact} "
                f"at align={align}"
            )
        w = alignment_speedup(model, true_blk, align, true_blk, "write")
        r = alignment_speedup(model, true_blk, align, true_blk, "read")
        speedups_w.append(w)
        speedups_r.append(r)
        lines.append(
            f"{align // KiB:>9}  {k_model:>11.1f}  {w:>13.2f}  {r:>12.2f}"
        )
        metrics[f"write_speedup_{align // KiB}k"] = Metric(w, "x", "info")

    # Pin the ordering of the ablation sweep (smaller alignment -> more
    # sharers -> larger aligned-vs-unaligned speedup, strictly so below
    # the true block size) and the paper's Table 1 factors at 16 KiB.
    for (a_blk, a), (b_blk, b) in zip(
        zip(ALIGNMENT_SWEEP_BLKSIZES, speedups_w),
        zip(ALIGNMENT_SWEEP_BLKSIZES[1:], speedups_w[1:]),
    ):
        if not (b > a or (b == a and a_blk % true_blk == 0 and b_blk % true_blk == 0)):
            raise AssertionError(
                f"alignment-speedup ordering broken: {a_blk}B -> {a:.3f}x but "
                f"{b_blk}B -> {b:.3f}x"
            )
    i16 = ALIGNMENT_SWEEP_BLKSIZES.index(16 * KiB)
    if abs(speedups_w[i16] - 2.53) > 0.02 or abs(speedups_r[i16] - 1.78) > 0.02:
        raise AssertionError(
            f"16 KiB factors drifted from Table 1: write {speedups_w[i16]:.3f}x "
            f"(paper 2.53x), read {speedups_r[i16]:.3f}x (paper 1.78x)"
        )
    metrics["write_factor_16k"] = Metric(speedups_w[i16], "x", "info")
    metrics["read_factor_16k"] = Metric(speedups_r[i16], "x", "info")

    # nfiles axis on the striped system: splitting the 1M-task multifile
    # across more physical files covers more OSTs; the optimized policy
    # must dominate the default at every split (paper Fig. 4b).
    lustre = jaguar()
    lines.append("")
    lines.append(
        f"{lustre.name} (Lustre, {lustre.n_targets} OSTs): aggregate MB/s "
        "by physical-file count"
    )
    lines.append("nfiles  coverage  default BW  optimized BW")
    prev_cov = 0.0
    for nf in p["nfiles_grid"]:
        cov = expected_coverage(
            nf, lustre.default_striping.stripe_count, lustre.n_targets
        )
        bw_d = aggregate_stripe_bandwidth(
            nf,
            lustre.default_striping,
            lustre.n_targets,
            lustre.target_write_bw,
            lustre.peak_write_bw,
        )
        bw_o = aggregate_stripe_bandwidth(
            nf,
            lustre.optimized_striping,
            lustre.n_targets,
            lustre.target_write_bw,
            lustre.peak_write_bw,
        )
        if cov < prev_cov - 1e-9:
            raise AssertionError(f"OST coverage shrank at nfiles={nf}")
        if bw_o < bw_d - 1e-9:
            raise AssertionError(
                f"optimized striping below default at nfiles={nf}: "
                f"{bw_o:.0f} < {bw_d:.0f} MB/s"
            )
        prev_cov = cov
        lines.append(f"{nf:>6}  {cov:>8.1f}  {bw_d:>8.0f}    {bw_o:>9.0f}")
    return ScenarioOutput(metrics=metrics, text="\n".join(lines))


# --------------------------------------------------------------------------
# Task-local write bandwidth on real cores: the data plane the process
# engine exists for.  Each worker streams its task-local pieces into a
# shared multifile over LocalBackend; the gated figure is aggregate MB/s
# across the world.  Per-task volume stays small enough (<< dirty-page
# thresholds) that every round lands in the page cache — the scenario
# measures the engines' data paths, not the disk.

#: Worker grid of the ``taskbw`` family and its per-task write volume.
TASKBW_WORKERS = (1, 2, 4)
TASKBW_TASK_MB = 32


def _taskbw_program(comm, path, npieces, piece_bytes, chunksize, fsblksize):
    """Rank body: stream ``npieces`` task-local pieces and parclose.

    Module-level (not a closure) so the spawn start method can pickle it;
    every input is an int or a string for the same reason.
    """
    from repro.backends.localfs import LocalBackend
    from repro.sion import paropen

    piece = bytes([0x40 + comm.rank]) * piece_bytes
    f = paropen(
        path,
        "w",
        comm,
        chunksize=chunksize,
        fsblksize=fsblksize,
        backend=LocalBackend(),
    )
    for _ in range(npieces):
        f.fwrite(piece)
    f.parclose()
    return npieces * piece_bytes


def _taskbw(ctx) -> ScenarioOutput:
    import os
    import tempfile

    from repro.backends.localfs import LocalBackend
    from repro.simmpi import run_spmd
    from repro.sion import serial

    p = ctx.params
    workers = p["workers"]
    piece_bytes = p["piece_kib"] * KiB
    npieces = p["task_mb"] * KiB // p["piece_kib"]
    per_task = npieces * piece_bytes
    total_mb = per_task * workers / (1 << 20)

    best = float("inf")
    with tempfile.TemporaryDirectory(prefix="repro-taskbw-") as base:
        path = os.path.join(base, "bw.sion")
        for rnd in range(p["rounds"]):
            t0 = time.perf_counter()
            out = run_spmd(
                workers,
                _taskbw_program,
                path,
                npieces,
                piece_bytes,
                p["chunksize"],
                p["fsblksize"],
                engine=p["engine"],
            )
            best = min(best, time.perf_counter() - t0)
            if out != [per_task] * workers:
                raise AssertionError(f"ranks reported {out}, expected {per_task} each")
            if rnd != p["rounds"] - 1:
                # Dropping the file between rounds discards its dirty pages,
                # so repeated rounds never accumulate writeback pressure.
                os.unlink(path)

        # Round-trip the last file through the serial global view: exact
        # logical volume, and the last rank's bytes byte-for-byte.
        with serial.open(path, "r", backend=LocalBackend()) as f:
            total = f.get_locations().total_bytes()
            if total != per_task * workers:
                raise AssertionError(f"multifile holds {total} logical bytes")
            got = f.read_task(workers - 1)
            if got != bytes([0x40 + workers - 1]) * per_task:
                raise AssertionError(f"rank {workers - 1} round-tripped bad bytes")

    agg = total_mb / best
    metrics = {
        "write_wall_s": Metric(best, "s", "lower"),
        "agg_mb_per_s": Metric(agg, "MB/s", "higher"),
        "per_task_mb": Metric(float(p["task_mb"]), "MB", "info"),
    }
    text = (
        f"{workers} worker(s) x {p['task_mb']} MB task-local writes "
        f"({p['piece_kib']} KiB pieces) via engine={p['engine']}: best of "
        f"{p['rounds']} rounds {best:.3f} s = {agg:,.0f} MB/s aggregate"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw={"wall": best})


# --------------------------------------------------------------------------
# Registration: one scenario per (family, ntasks) so the CI grid can be
# selected by tag (fnmatch reads the bracketed grid names as character
# classes, so tags are the reliable selector).

for _n in SCALE_TASK_COUNTS:
    scenario(
        f"scale/paropen-parclose[ntasks={_n}]",
        suite="scale",
        tags=_tags("paropen-parclose", _n),
        params={
            "ntasks": _n,
            "chunksize": CHUNKSIZE,
            "fsblksize": FSBLK,
            "nfiles": 1,
            "payload_bytes": PAYLOAD,
            "engine": "bulk",
        },
    )(_paropen_parclose)
    scenario(
        f"scale/serial-scan[ntasks={_n}]",
        suite="scale",
        tags=_tags("serial-scan", _n),
        params={
            "ntasks": _n,
            "chunksize": CHUNKSIZE,
            "fsblksize": FSBLK,
            "nfiles": 4,
            "payload_bytes": PAYLOAD,
            "writers": 3,
        },
    )(_serial_scan)
    scenario(
        f"scale/collectives[ntasks={_n}]",
        suite="scale",
        tags=_tags("collectives", _n),
        params={"ntasks": _n, "rounds": 1, "engine": "bulk"},
    )(_collectives)

# The nightly-only 2^20-task headline point and the contention-model
# sweep over its layout.  ``nightly-1m`` (not ``ci-grid``): the PR gate
# keeps its tight 4k/16k loop; the nightly full-suite run — and anyone
# running ``--suite scale`` without a tag filter — gets the 1M cycle.
scenario(
    f"scale/paropen-parclose[ntasks={NIGHTLY_TASK_COUNT}]",
    suite="scale",
    tags=("scale", "control-plane", "paropen-parclose", "nightly-1m"),
    params={
        "ntasks": NIGHTLY_TASK_COUNT,
        "chunksize": CHUNKSIZE,
        "fsblksize": FSBLK,
        "nfiles": 1,
        "payload_bytes": PAYLOAD,
        "engine": "bulk",
    },
)(_paropen_parclose)
scenario(
    f"scale/contention-sweep[ntasks={NIGHTLY_TASK_COUNT}]",
    suite="scale",
    # Model math only (no SPMD world), so it is cheap enough for the CI
    # grid as well — the Table 1 pins then guard every PR.
    tags=("scale", "model", "contention-sweep", "nightly-1m", "ci-grid"),
    params={
        "ntasks": NIGHTLY_TASK_COUNT,
        "layout_window": 4096,
        "nfiles_grid": (1, 2, 4, 16, 64, 512),
    },
)(_contention_sweep)

for _w in TASKBW_WORKERS:
    scenario(
        f"scale/taskbw[workers={_w}]",
        suite="scale",
        # Always part of the CI grid: the whole family finishes in a few
        # seconds, and the scaling claim needs the 1- and 4-worker points
        # in the same run.
        tags=("scale", "data-plane", "taskbw", "ci-grid"),
        params={
            "workers": _w,
            "task_mb": TASKBW_TASK_MB,
            "piece_kib": 32,
            "chunksize": 256 * KiB,
            "fsblksize": FSBLK,
            "rounds": 2,
            "engine": "proc",
        },
    )(_taskbw)
