"""``repartition`` suite: m readers over an n-writer multifile.

ISSUE 5's data-plane claim: the multifile is a portable container, so an
analysis world of *any* size m can read back an n-writer checkpoint —
byte-identically, with physical read calls scaling with the **readers**
(each reader issues one vectored ``gather_read`` per touched physical
file), not with the recorded task streams.  These scenarios drive the
real library over the simulated store with a
:class:`~repro.backends.instrument.CountingBackend` and pin the call
counts from first principles (direct-mode handles are replay-guarded,
so the counts are exact on the bulk engine too); the committed baseline
only has to gate wall clock:

* ``repartition/read[nwriters=N]`` — an N-task bulk-engine checkpoint
  read back by 32 readers, every byte verified in-rank; read calls
  pinned at ``32 + 8·nfiles + 4``.  The 64k point is the acceptance
  workload (write with 64k tasks, analyze with 32).
* ``repartition/reader-sweep[nwriters=4096]`` — the m-axis: the same
  multifile consumed by 8/32/256 readers, read calls pinned at
  ``m + 12`` each — O(m), measured, not asserted-by-construction.
* ``repartition/prefetch[nwriters=4096]`` — collective-prefetch
  partitioned read: 256 readers through 32 collector groups, read
  calls pinned at ``32 + 12``.
* ``repartition/restart-analysis-model[system=jugene]`` — the modelled
  checkpoint/analysis cycle (:mod:`repro.workloads.repartition`) over
  the m-sweep: deterministic simulated seconds, gate-tight.

The 4k/16k points carry the ``ci-grid`` tag and gate on every push; 64k
runs in the nightly workflow.
"""

from __future__ import annotations

import time

from repro.backends.instrument import CountingBackend
from repro.backends.simfs_backend import SimBackend
from repro.bench.collective import _payload, _write_cycle
from repro.bench.registry import scenario
from repro.bench.results import Metric, ScenarioOutput
from repro.bench.scale import expected_geometry
from repro.fs.simfs import SimFS

KiB = 1024

#: Writer counts of the full grid; the first two form the CI grid.
REPARTITION_WRITER_COUNTS = (4096, 16384, 65536)
CI_WRITER_COUNTS = frozenset((4096, 16384))

#: The acceptance shape: however many tasks wrote, 32 readers analyze.
NREADERS = 32

FSBLK = 4 * KiB
CHUNKSIZE = 4 * KiB
PAYLOAD = 64

#: Fixed metadata read calls of a partitioned open: the rank-0 probe (4
#: streaming reads) plus one mb1+mb2 decode per physical file (8 reads).
def metadata_reads(nfiles: int) -> int:
    return 8 * nfiles + 4


def _tags(family: str, nwriters: int) -> tuple[str, ...]:
    tags = ["repartition", "data-plane", family]
    if nwriters in CI_WRITER_COUNTS:
        tags.append("ci-grid")
    return tuple(tags)


def _backend() -> CountingBackend:
    return CountingBackend(SimBackend(SimFS(blocksize_override=FSBLK)))


def _pin(actual: int, expected: int, what: str) -> None:
    """First-principles count assertion (the gate never sees drift)."""
    if actual != expected:
        raise AssertionError(f"{what}: expected exactly {expected}, got {actual}")


def _partitioned_read_cycle(
    backend, nwriters, nreaders, engine, *, collectsize=None,
    payload_bytes=PAYLOAD, path="/repart.sion",
):
    """Partitioned read-back with in-rank byte verification; returns wall."""
    from repro.simmpi import run_spmd
    from repro.sion import paropen
    from repro.sion.mapping import ReadPartition

    part = ReadPartition.balanced(nwriters, nreaders)

    def program(comm):
        f = paropen(
            path, "r", comm, backend=backend, partitioned=True,
            collectsize=collectsize,
        )
        data = f.read_all()
        f.parclose()
        expected = b"".join(
            _payload(w, payload_bytes) for w in part.writers_of(comm.rank)
        )
        if data != expected:
            raise AssertionError(
                f"reader {comm.rank}/{nreaders} diverged "
                f"({len(data)} vs {len(expected)} bytes)"
            )
        return len(data)

    t0 = time.perf_counter()
    out = run_spmd(nreaders, program, engine=engine)
    wall = time.perf_counter() - t0
    if sum(out) != nwriters * payload_bytes:
        raise AssertionError(f"readers consumed {sum(out)} bytes in total")
    return wall


# --------------------------------------------------------------------------
# The acceptance workload: n bulk-engine writers, 32 readers.


def _read_grid_point(ctx) -> ScenarioOutput:
    p = ctx.params
    nwriters, nreaders = p["nwriters"], p["nreaders"]
    backend = _backend()
    write_wall, geom = _write_cycle(
        backend, nwriters, p["engine"], path="/repart.sion"
    )
    if geom != expected_geometry(nwriters, CHUNKSIZE, FSBLK):
        raise AssertionError(f"on-disk geometry drifted: {geom}")
    before = backend.snapshot()
    read_wall = _partitioned_read_cycle(backend, nwriters, nreaders, p["engine"])
    snap = backend.snapshot()
    read_calls = snap["data_read_calls"] - before["data_read_calls"]
    # One vectored gather_read per reader plus the fixed metadata loads —
    # O(m) however many writer streams the multifile records.
    _pin(backend.stats.calls.get("gather_read", 0), nreaders, "reader gather_reads")
    _pin(read_calls, nreaders + metadata_reads(1), "total backend read calls")
    fanin = nwriters // nreaders
    metrics = {
        "write_wall_s": Metric(write_wall, "s", "lower"),
        "read_wall_s": Metric(read_wall, "s", "lower"),
        "writers_per_s": Metric(nwriters / write_wall, "tasks/s", "info"),
        "data_read_calls": Metric(float(read_calls), "calls", "info"),
        "streams_per_reader": Metric(float(fanin), "streams", "info"),
    }
    text = (
        f"{nwriters} bulk-engine writers -> {nreaders} readers "
        f"({fanin} streams each, byte-verified): {read_calls} backend read "
        f"calls ({nreaders} vectored waves + {metadata_reads(1)} metadata) "
        f"in {read_wall:.2f} s after a {write_wall:.2f} s checkpoint"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=snap)


# --------------------------------------------------------------------------
# The m-axis: physical read calls are O(m), measured point by point.


def _reader_sweep(ctx) -> ScenarioOutput:
    p = ctx.params
    nwriters = p["nwriters"]
    backend = _backend()
    _write_cycle(backend, nwriters, p["engine"], path="/repart.sion")
    metrics: dict[str, Metric] = {}
    lines = ["readers  read calls  streams/reader    wall"]
    for m in p["reader_counts"]:
        before = backend.snapshot()
        wall = _partitioned_read_cycle(backend, nwriters, m, p["engine"])
        snap = backend.snapshot()
        calls = snap["data_read_calls"] - before["data_read_calls"]
        _pin(calls, m + metadata_reads(1), f"read calls at m={m}")
        metrics[f"read_wall_s[readers={m}]"] = Metric(wall, "s", "lower")
        metrics[f"read_calls[readers={m}]"] = Metric(float(calls), "calls", "info")
        lines.append(
            f"{m:>7}  {calls:>10}  {nwriters / m:>14.1f}  {wall:>5.2f} s"
        )
    text = (
        f"{nwriters}-stream multifile consumed by shrinking reader worlds "
        "(read calls scale with m, not n):\n" + "\n".join(lines)
    )
    return ScenarioOutput(metrics=metrics, text=text)


# --------------------------------------------------------------------------
# Collective-prefetch partitioned read: calls scale with collectors.


def _prefetch(ctx) -> ScenarioOutput:
    p = ctx.params
    nwriters, nreaders, collectsize = (
        p["nwriters"], p["nreaders"], p["collectsize"],
    )
    ngroups = -(-nreaders // collectsize)
    backend = _backend()
    _write_cycle(backend, nwriters, p["engine"], path="/repart.sion")
    before = backend.snapshot()
    wall = _partitioned_read_cycle(
        backend, nwriters, nreaders, p["engine"], collectsize=collectsize
    )
    snap = backend.snapshot()
    calls = snap["data_read_calls"] - before["data_read_calls"]
    # One prefetch gather_read per collector group (single physical file).
    _pin(backend.stats.calls.get("gather_read", 0), ngroups, "prefetch waves")
    _pin(calls, ngroups + metadata_reads(1), "total backend read calls")
    metrics = {
        "read_wall_s": Metric(wall, "s", "lower"),
        "data_read_calls": Metric(float(calls), "calls", "info"),
        "collector_groups": Metric(float(ngroups), "groups", "info"),
    }
    text = (
        f"{nwriters} streams -> {nreaders} readers through {ngroups} "
        f"collector groups (collectsize {collectsize}): {calls} backend "
        f"read calls in {wall:.2f} s"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=snap)


# --------------------------------------------------------------------------
# The modelled checkpoint/analysis cycle (deterministic simulated seconds).


def _restart_analysis_model(ctx) -> ScenarioOutput:
    from repro.workloads.repartition import sweep_reader_counts

    p = ctx.params
    profile = ctx.profile
    sweep = sweep_reader_counts(
        profile, p["nwriters"], p["reader_counts"], p["bytes_per_writer"],
        nfiles=p["nfiles"],
    )
    metrics: dict[str, Metric] = {}
    lines = ["readers  write (s)  read (s)  cycle (s)"]
    for point in sweep:
        m = point.nreaders
        metrics[f"read_time_s[readers={m}]"] = Metric(
            point.read.time_s, "s", "lower"
        )
        metrics[f"cycle_time_s[readers={m}]"] = Metric(
            point.cycle_time_s, "s", "lower"
        )
        lines.append(
            f"{m:>7}  {point.write.time_s:>9.2f}  {point.read.time_s:>8.2f}  "
            f"{point.cycle_time_s:>9.2f}"
        )
    text = (
        f"{p['nwriters']}-writer checkpoint analyzed by shrinking worlds on "
        f"{profile.name} (modelled):\n" + "\n".join(lines)
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=sweep)


# --------------------------------------------------------------------------
# Registration.

for _n in REPARTITION_WRITER_COUNTS:
    scenario(
        f"repartition/read[nwriters={_n}]",
        suite="repartition",
        tags=_tags("read", _n),
        params={
            "nwriters": _n,
            "nreaders": NREADERS,
            "engine": "bulk",
        },
    )(_read_grid_point)

scenario(
    "repartition/reader-sweep[nwriters=4096]",
    suite="repartition",
    tags=_tags("reader-sweep", 4096),
    params={
        "nwriters": 4096,
        "reader_counts": [8, 32, 256],
        "engine": "bulk",
    },
)(_reader_sweep)

scenario(
    "repartition/prefetch[nwriters=4096]",
    suite="repartition",
    tags=_tags("prefetch", 4096),
    params={
        "nwriters": 4096,
        "nreaders": 256,
        "collectsize": 8,
        "engine": "bulk",
    },
)(_prefetch)

scenario(
    "repartition/restart-analysis-model[system=jugene]",
    suite="repartition",
    tags=("repartition", "restart-analysis", "ci-grid"),
    params={
        "nwriters": 65536,
        "reader_counts": [256, 4096, 65536],
        "bytes_per_writer": 2 * 1024 * KiB,
        "nfiles": 16,
    },
    profile="jugene",
)(_restart_analysis_model)
