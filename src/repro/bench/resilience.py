"""``resilience`` suite: the cost and exactness of surviving failures.

ISSUE 9's resilience claims, measured: buddy-replica checkpointing pays
exactly one extra copy of every physical byte (overhead pinned at 2.0x —
replicas are byte-identical images of their primaries, metadata
included), and buys back *whole-file loss*: deleting one physical file
and running ``recover_multifile`` restores it byte-identically, with the
recovered logical volume pinned from first principles.  The torn-close
family drives the same recovery machinery through the fault layer
(:class:`~repro.backends.faults.FaultInjectingBackend` swallowing the
metablock-2 write) and pins that the shadow rebuild recovers **all**
logical bytes of a fully flushed checkpoint.

* ``resilience/buddy-restore[ntasks=N]`` — an N-task bulk-engine buddy
  checkpoint over 2 physical files: replica overhead pinned at exactly
  2.0x, then physical file 1 is deleted and rebuilt from its buddy;
  recovered bytes pinned at ``(N/2) * payload`` and the restored set is
  hash-compared against the pre-loss capture.
* ``resilience/torn-close-recover[ntasks=N]`` — the close sequence loses
  metablock 2 (scripted fault, no exception); the shadow rebuild
  recovers ``N * payload`` logical bytes and the set verifies deep.

The committed baseline gates wall clock only; every count above is
asserted in-scenario, so the gate never sees drift.  The 4k/16k points
carry the ``ci-grid`` tag and gate on every push; 64k runs nightly.
"""

from __future__ import annotations

import hashlib
import time

from repro.backends.simfs_backend import SimBackend
from repro.bench.registry import scenario
from repro.bench.results import Metric, ScenarioOutput
from repro.fs.simfs import SimFS

KiB = 1024

#: Task counts of the full grid; the first two form the CI grid.
RESILIENCE_TASK_COUNTS = (4096, 16384, 65536)
CI_TASK_COUNTS = frozenset((4096, 16384))

FSBLK = 4 * KiB
CHUNKSIZE = 4 * KiB
PAYLOAD = 64
NFILES = 2


def _tags(family: str, ntasks: int) -> tuple[str, ...]:
    tags = ["resilience", "recovery", family]
    if ntasks in CI_TASK_COUNTS:
        tags.append("ci-grid")
    return tuple(tags)


def _backend() -> SimBackend:
    return SimBackend(SimFS(blocksize_override=FSBLK))


def _payload(rank: int, nbytes: int) -> bytes:
    return bytes((rank * 31 + i) % 256 for i in range(nbytes))


def _pin(actual, expected, what: str) -> None:
    """First-principles assertion (the gate never sees drift)."""
    if actual != expected:
        raise AssertionError(f"{what}: expected exactly {expected}, got {actual}")


def _checkpoint_cycle(backend, ntasks, *, buddy, path="/resil.sion"):
    """One shadowed bulk-engine checkpoint; returns the write wall."""
    from repro.simmpi import run_spmd
    from repro.sion import paropen

    def program(comm):
        f = paropen(
            path, "w", comm, chunksize=CHUNKSIZE, fsblksize=FSBLK,
            nfiles=NFILES, shadow=True, buddy=buddy, backend=backend,
        )
        f.fwrite(_payload(comm.rank, PAYLOAD))
        f.parclose()

    t0 = time.perf_counter()
    run_spmd(ntasks, program, engine="bulk")
    return time.perf_counter() - t0


def _sha256(backend, path: str) -> str:
    """Streaming content hash (the files reach hundreds of MiB at 64k)."""
    h = hashlib.sha256()
    size = backend.file_size(path)
    f = backend.open(path, "rb")
    try:
        off = 0
        while off < size:
            chunk = f.pread(off, min(4 * KiB * KiB, size - off))
            h.update(chunk)
            off += len(chunk)
    finally:
        f.close()
    return h.hexdigest()


# --------------------------------------------------------------------------
# Buddy replicas: 2.0x the bytes, whole-file loss survived exactly.


def _buddy_restore(ctx) -> ScenarioOutput:
    from repro.sion import buddy_path, recover_multifile
    from repro.sion.mapping import physical_path
    from repro.utils.verify import verify_multifile

    ntasks = ctx.params["ntasks"]
    backend = _backend()
    path = "/resil.sion"
    write_wall = _checkpoint_cycle(backend, ntasks, buddy=True)

    primary_bytes = sum(
        backend.file_size(physical_path(path, k)) for k in range(NFILES)
    )
    replica_bytes = sum(
        backend.file_size(buddy_path(path, k, NFILES)) for k in range(NFILES)
    )
    # Replicas are byte-identical images of their primaries — the
    # overhead is exactly one extra copy of every byte, metadata and all.
    _pin(replica_bytes, primary_bytes, "replica byte overhead (2.0x)")

    before = {
        k: _sha256(backend, physical_path(path, k)) for k in range(NFILES)
    }
    lost = physical_path(path, 1)
    backend.unlink(lost)

    t0 = time.perf_counter()
    report = recover_multifile(path, backend=backend)
    recover_wall = time.perf_counter() - t0

    _pin(report.files_rebuilt_from_buddy, 1, "files rebuilt from buddy")
    # File 1 hosts the upper half of a blocked mapping: its logical
    # volume is known from first principles.
    _pin(report.bytes_recovered, (ntasks // NFILES) * PAYLOAD,
         "recovered logical bytes")
    after = {
        k: _sha256(backend, physical_path(path, k)) for k in range(NFILES)
    }
    _pin(after, before, "post-recovery content hashes")
    if not verify_multifile(path, backend=backend, deep=True).ok:
        raise AssertionError("recovered set failed deep verification")

    metrics = {
        "write_wall_s": Metric(write_wall, "s", "lower"),
        "recover_wall_s": Metric(recover_wall, "s", "lower"),
        "tasks_per_s": Metric(ntasks / write_wall, "tasks/s", "info"),
        "replica_overhead_x": Metric(
            (primary_bytes + replica_bytes) / primary_bytes, "x", "info"
        ),
        "bytes_recovered": Metric(float(report.bytes_recovered), "B", "info"),
    }
    text = (
        f"{ntasks}-task buddy checkpoint ({NFILES} files, 2.0x bytes): lost "
        f"physical file 1, rebuilt {report.bytes_recovered} logical bytes "
        f"byte-identically from its buddy in {recover_wall:.2f} s "
        f"(checkpoint took {write_wall:.2f} s)"
    )
    return ScenarioOutput(metrics=metrics, text=text)


# --------------------------------------------------------------------------
# Torn close: the fault layer drops metablock 2; shadows win it back.


def _torn_close_recover(ctx) -> ScenarioOutput:
    from repro.backends import FaultInjectingBackend, FaultPlan
    from repro.sion import recover_multifile
    from repro.sion.mapping import physical_path
    from repro.utils.verify import verify_multifile

    ntasks = ctx.params["ntasks"]
    path = "/resil.sion"
    inner = _backend()
    plan = FaultPlan()
    for k in range(NFILES):
        plan = plan.drop_metablock2(physical_path(path, k))
    backend = FaultInjectingBackend(inner, plan)

    write_wall = _checkpoint_cycle(backend, ntasks, buddy=False)
    if verify_multifile(path, backend=inner).ok:
        raise AssertionError("fault plan failed to tear the close sequence")

    # Recovery runs on the clean inner backend: an armed plan would
    # swallow the repair's own metablock-2 write just as faithfully.
    t0 = time.perf_counter()
    report = recover_multifile(path, backend=inner)
    recover_wall = time.perf_counter() - t0

    _pin(report.files_recovered, NFILES, "files recovered")
    # The checkpoint was fully flushed before the close tore: the shadow
    # rebuild recovers every logical byte.
    _pin(report.bytes_recovered, ntasks * PAYLOAD, "recovered logical bytes")
    if not verify_multifile(path, backend=inner, deep=True).ok:
        raise AssertionError("recovered set failed deep verification")

    metrics = {
        "write_wall_s": Metric(write_wall, "s", "lower"),
        "recover_wall_s": Metric(recover_wall, "s", "lower"),
        "tasks_per_s": Metric(ntasks / write_wall, "tasks/s", "info"),
        "bytes_recovered": Metric(float(report.bytes_recovered), "B", "info"),
    }
    text = (
        f"{ntasks}-task checkpoint with a scripted torn close ({NFILES} "
        f"files, metablock 2 never persisted): shadow rebuild recovered all "
        f"{report.bytes_recovered} logical bytes in {recover_wall:.2f} s"
    )
    return ScenarioOutput(metrics=metrics, text=text)


# --------------------------------------------------------------------------
# Registration.

for _n in RESILIENCE_TASK_COUNTS:
    scenario(
        f"resilience/buddy-restore[ntasks={_n}]",
        suite="resilience",
        tags=_tags("buddy-restore", _n),
        params={"ntasks": _n},
    )(_buddy_restore)
    scenario(
        f"resilience/torn-close-recover[ntasks={_n}]",
        suite="resilience",
        tags=_tags("torn-close", _n),
        params={"ntasks": _n},
    )(_torn_close_recover)
