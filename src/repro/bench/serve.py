"""``serve`` suite: the read gateway under concurrent session load.

The paper attributes its above-peak Jaguar read bandwidths (Fig. 5b) to
client-side caching; ISSUE 6 turns :mod:`repro.fs.cache` into a real
shared LRU chunk cache and serves sealed containers through the
:mod:`repro.serve` gateway.  These scenarios drive the gateway like a
production load generator — thousands of simultaneous asyncio sessions
over one 4k-writer multifile — and report throughput *and* tail latency
(p50/p99), with the cache telemetry pinned in-scenario:

* ``serve/load[sessions=N]`` — N concurrent record sessions (an N-way
  :class:`~repro.sion.mapping.ReadPartition` over 4096 writer streams),
  every byte verified.  A cold pass populates the cache; a warm rerun
  of the same N sessions must hit it: the warm pass is pinned at **zero
  backend data-read calls**, a warm hit-rate **> 0.9**, and all warm
  bytes served from cache.  The 1024-session point is the acceptance
  workload; 256/1024 carry ``ci-grid``, 4096 runs nightly.
* ``serve/mix[sessions=256]`` — an open/read op mix: record sessions
  interleaved with stateless ranged reads and whole-stream reads, the
  kind of traffic a restart-analysis service actually sees.
* ``serve/sweep[nwriters=4096]`` — the concurrency axis: the same
  container under 64/256/1024 sessions, cold and warm, one latency
  curve per point (nightly).

Latency percentiles are wall-clock and gate at the comparator's default
headroom; call counts and hit rates are asserted in-scenario from first
principles, so the committed baseline never sees drift.
"""

from __future__ import annotations

import asyncio
import math
import time

from repro.backends.instrument import CountingBackend
from repro.backends.simfs_backend import SimBackend
from repro.bench.collective import _payload, _write_cycle
from repro.bench.registry import scenario
from repro.bench.results import Metric, ScenarioOutput
from repro.fs.simfs import SimFS
from repro.serve.gateway import ReadGateway
from repro.sion.mapping import ReadPartition

KiB = 1024

#: One container shape for the whole suite: the acceptance multifile.
NWRITERS = 4096
FSBLK = 4 * KiB
CHUNKSIZE = 4 * KiB
PAYLOAD = 64
PATH = "/serve.sion"

#: Session counts of the load grid; the first two form the CI grid.
SERVE_SESSION_COUNTS = (256, 1024, 4096)
CI_SESSION_COUNTS = frozenset((256, 1024))

#: Gateway cache budget: holds the whole 16 MiB chunk region warm.
CACHE_BYTES = 64 * 1024 * KiB
CACHE_BLOCK = 64 * KiB

#: Session read granularity: small enough that every session issues
#: several ops (latency samples), large enough to cross chunk bounds.
READ_SIZE = 100


def _tags(family: str, ci: bool) -> tuple[str, ...]:
    tags = ["serve", "data-plane", family]
    if ci:
        tags.append("ci-grid")
    return tuple(tags)


def _backend() -> CountingBackend:
    return CountingBackend(SimBackend(SimFS(blocksize_override=FSBLK)))


def _pin(actual, expected, what: str) -> None:
    """First-principles assertion (the gate never sees drift)."""
    if actual != expected:
        raise AssertionError(f"{what}: expected exactly {expected}, got {actual}")


def _percentile(samples: "list[float]", q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in 0..1)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))]


def _expected_slice(part: ReadPartition, reader: int) -> bytes:
    return b"".join(_payload(w, PAYLOAD) for w in part.writers_of(reader))


async def _session_pass(gw: ReadGateway, nsessions: int):
    """One full pass: open N sessions, drain each slice, verify, close.

    All sessions are opened before any reads begin, so the gateway's
    ``sessions_peak`` counter proves true concurrency.  Returns
    ``(open_latencies, read_latencies, total_bytes)`` in seconds/bytes.
    """
    part = ReadPartition.balanced(NWRITERS, nsessions)
    open_lat: "list[float]" = []
    read_lat: "list[float]" = []
    sids: "list[tuple[int, int]]" = []

    async def open_one(i: int) -> None:
        t0 = time.perf_counter()
        sid = await gw.open_session(PATH, readers=nsessions, reader=i)
        open_lat.append(time.perf_counter() - t0)
        sids.append((i, sid))

    await asyncio.gather(*(open_one(i) for i in range(nsessions)))
    _pin(gw.stats_gateway.sessions_active, nsessions, "concurrent sessions")

    async def drain_one(i: int, sid: int) -> int:
        parts = []
        while True:
            t0 = time.perf_counter()
            piece = await gw.read(sid, READ_SIZE)
            read_lat.append(time.perf_counter() - t0)
            if not piece:
                break
            parts.append(piece)
        data = b"".join(parts)
        if data != _expected_slice(part, i):
            raise AssertionError(
                f"session {i}/{nsessions} diverged from the serial view "
                f"({len(data)} bytes)"
            )
        await gw.close_session(sid)
        return len(data)

    totals = await asyncio.gather(*(drain_one(i, sid) for i, sid in sids))
    if sum(totals) != NWRITERS * PAYLOAD:
        raise AssertionError(f"sessions consumed {sum(totals)} bytes in total")
    return open_lat, read_lat, sum(totals)


def _lat_metrics(prefix: str, samples: "list[float]") -> "dict[str, Metric]":
    return {
        f"{prefix}_p50_ms": Metric(_percentile(samples, 0.50) * 1e3, "ms", "lower"),
        f"{prefix}_p99_ms": Metric(_percentile(samples, 0.99) * 1e3, "ms", "lower"),
    }


# --------------------------------------------------------------------------
# The acceptance workload: N concurrent sessions, cold then warm.


def _load(ctx) -> ScenarioOutput:
    nsessions = ctx.params["sessions"]
    backend = _backend()
    _write_cycle(
        backend, NWRITERS, ctx.params["engine"],
        chunksize=CHUNKSIZE, payload_bytes=PAYLOAD, path=PATH,
    )
    gw = ReadGateway(
        backend=backend, cache_bytes=CACHE_BYTES, cache_block=CACHE_BLOCK
    )

    # Cold pass: populates the cache straight off the store.
    before = backend.snapshot()
    t0 = time.perf_counter()
    open_lat, read_lat, nbytes = asyncio.run(_session_pass(gw, nsessions))
    cold_wall = time.perf_counter() - t0
    cold_reads = backend.snapshot()["data_read_calls"] - before["data_read_calls"]
    cold_cache = gw.cache.snapshot()

    # Warm rerun: the same N sessions must be served from cache alone.
    before = backend.snapshot()
    t0 = time.perf_counter()
    _, warm_read_lat, warm_bytes = asyncio.run(_session_pass(gw, nsessions))
    warm_wall = time.perf_counter() - t0
    after = backend.snapshot()
    warm_cache = gw.cache.snapshot()

    _pin(
        after["data_read_calls"] - before["data_read_calls"], 0,
        "warm-pass backend data reads",
    )
    warm_lookups = warm_cache["lookups"] - cold_cache["lookups"]
    warm_hits = warm_cache["hits"] - cold_cache["hits"]
    warm_hit_rate = warm_hits / warm_lookups if warm_lookups else 0.0
    if not warm_hit_rate > 0.9:
        raise AssertionError(f"warm hit-rate {warm_hit_rate:.3f} not > 0.9")
    warm_cache_bytes = warm_cache["bytes_served"] - cold_cache["bytes_served"]
    if warm_cache_bytes < warm_bytes:
        raise AssertionError(
            f"warm pass served {warm_cache_bytes} cache bytes for "
            f"{warm_bytes} logical bytes — not fully cache-resident"
        )
    _pin(gw.stats_gateway.sessions_peak, nsessions, "peak concurrent sessions")

    metrics = {
        "cold_wall_s": Metric(cold_wall, "s", "lower"),
        "warm_wall_s": Metric(warm_wall, "s", "lower"),
        **_lat_metrics("open", open_lat),
        **_lat_metrics("read", read_lat),
        **_lat_metrics("warm_read", warm_read_lat),
        "sessions_per_s": Metric(nsessions / cold_wall, "sessions/s", "info"),
        "cold_hit_rate": Metric(cold_cache["hit_rate"], "ratio", "higher"),
        "warm_hit_rate": Metric(warm_hit_rate, "ratio", "higher"),
        "data_read_calls": Metric(float(cold_reads), "calls", "info"),
        "cache_bytes_served": Metric(float(warm_cache_bytes), "B", "info"),
    }
    text = (
        f"{nsessions} concurrent sessions over {NWRITERS} writer streams "
        f"({nbytes} bytes byte-verified): cold {cold_wall:.2f} s "
        f"({cold_reads} backend reads, hit-rate "
        f"{cold_cache['hit_rate']:.2f}), warm {warm_wall:.2f} s "
        f"(0 backend reads, hit-rate {warm_hit_rate:.2f}, "
        f"{warm_cache_bytes} B from cache)"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=warm_cache)


# --------------------------------------------------------------------------
# Mixed op traffic: sessions + stateless ranged and whole-stream reads.


def _mix(ctx) -> ScenarioOutput:
    nclients = ctx.params["sessions"]
    backend = _backend()
    _write_cycle(
        backend, NWRITERS, ctx.params["engine"],
        chunksize=CHUNKSIZE, payload_bytes=PAYLOAD, path=PATH,
    )
    gw = ReadGateway(
        backend=backend, cache_bytes=CACHE_BYTES, cache_block=CACHE_BLOCK
    )
    op_lat: "list[float]" = []
    nops = 0

    async def client(i: int) -> int:
        nonlocal nops
        rank = (i * 31) % NWRITERS
        want = _payload(rank, PAYLOAD)
        # open+drain a single-stream session ...
        t0 = time.perf_counter()
        sid = await gw.open_session(PATH, rank=rank)
        data = await gw.read_all(sid)
        await gw.close_session(sid)
        op_lat.append(time.perf_counter() - t0)
        if data != want:
            raise AssertionError(f"client {i}: session bytes diverged")
        # ... a stateless whole-stream read ...
        t0 = time.perf_counter()
        task = await gw.read_task(PATH, (rank + 1) % NWRITERS)
        op_lat.append(time.perf_counter() - t0)
        if task != _payload((rank + 1) % NWRITERS, PAYLOAD):
            raise AssertionError(f"client {i}: read_task bytes diverged")
        # ... and a ranged read inside a third stream.
        t0 = time.perf_counter()
        rng = await gw.read_range(PATH, (rank + 2) % NWRITERS, 8, 16)
        op_lat.append(time.perf_counter() - t0)
        if rng != _payload((rank + 2) % NWRITERS, PAYLOAD)[8:24]:
            raise AssertionError(f"client {i}: read_range bytes diverged")
        nops += 3
        return len(data) + len(task) + len(rng)

    async def drive() -> int:
        totals = await asyncio.gather(*(client(i) for i in range(nclients)))
        return sum(totals)

    t0 = time.perf_counter()
    nbytes = asyncio.run(drive())
    wall = time.perf_counter() - t0
    cache = gw.cache.snapshot()
    _pin(nops, 3 * nclients, "mixed ops executed")

    metrics = {
        "mix_wall_s": Metric(wall, "s", "lower"),
        **_lat_metrics("op", op_lat),
        "ops_per_s": Metric(nops / wall, "ops/s", "info"),
        "hit_rate": Metric(cache["hit_rate"], "ratio", "higher"),
    }
    text = (
        f"{nclients} clients x 3 mixed ops (session, read_task, "
        f"read_range; {nbytes} bytes byte-verified) in {wall:.2f} s, "
        f"cache hit-rate {cache['hit_rate']:.2f}"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=cache)


# --------------------------------------------------------------------------
# The concurrency axis (nightly): one latency curve per session count.


def _sweep(ctx) -> ScenarioOutput:
    backend = _backend()
    _write_cycle(
        backend, NWRITERS, ctx.params["engine"],
        chunksize=CHUNKSIZE, payload_bytes=PAYLOAD, path=PATH,
    )
    metrics: "dict[str, Metric]" = {}
    lines = ["sessions  cold (s)  warm (s)  read p99 (ms)  hit rate"]
    for m in ctx.params["session_counts"]:
        gw = ReadGateway(
            backend=backend, cache_bytes=CACHE_BYTES, cache_block=CACHE_BLOCK
        )
        t0 = time.perf_counter()
        _, read_lat, _ = asyncio.run(_session_pass(gw, m))
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        asyncio.run(_session_pass(gw, m))
        warm = time.perf_counter() - t0
        hit_rate = gw.cache.snapshot()["hit_rate"]
        p99_ms = _percentile(read_lat, 0.99) * 1e3
        metrics[f"cold_wall_s[sessions={m}]"] = Metric(cold, "s", "lower")
        metrics[f"warm_wall_s[sessions={m}]"] = Metric(warm, "s", "lower")
        metrics[f"read_p99_ms[sessions={m}]"] = Metric(p99_ms, "ms", "lower")
        metrics[f"hit_rate[sessions={m}]"] = Metric(hit_rate, "ratio", "higher")
        lines.append(
            f"{m:>8}  {cold:>8.2f}  {warm:>8.2f}  {p99_ms:>13.3f}  {hit_rate:>8.2f}"
        )
        gw.close()
    text = (
        f"{NWRITERS}-writer container under growing session worlds "
        "(cold + warm pass each):\n" + "\n".join(lines)
    )
    return ScenarioOutput(metrics=metrics, text=text)


# --------------------------------------------------------------------------
# Registration.

for _n in SERVE_SESSION_COUNTS:
    scenario(
        f"serve/load[sessions={_n}]",
        suite="serve",
        tags=_tags("load", _n in CI_SESSION_COUNTS),
        params={"sessions": _n, "engine": "bulk"},
    )(_load)

scenario(
    "serve/mix[sessions=256]",
    suite="serve",
    tags=_tags("mix", True),
    params={"sessions": 256, "engine": "bulk"},
)(_mix)

scenario(
    "serve/sweep[nwriters=4096]",
    suite="serve",
    tags=_tags("sweep", False),
    params={"session_counts": [64, 256, 1024], "engine": "bulk"},
)(_sweep)
