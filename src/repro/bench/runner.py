"""Execute registered scenarios and collect a :class:`BenchReport`."""

from __future__ import annotations

import dataclasses
import math
import time
import traceback
from typing import Any, Callable, Mapping

from repro.bench.registry import Registry, ensure_builtin_scenarios
from repro.bench.results import BenchReport, Metric, ScenarioResult
from repro.bench.schema import METRIC_DIRECTIONS
from repro.errors import ReproError


def _metric_problems(metrics: dict[str, Metric]) -> list[str]:
    """Schema violations a scenario's own metrics would cause at save time."""
    problems = []
    for name, m in metrics.items():
        if not isinstance(m.value, (int, float)) or not math.isfinite(m.value):
            problems.append(f"{name}: value must be a finite number, got {m.value!r}")
        if not isinstance(m.unit, str):
            problems.append(f"{name}: unit must be a string, got {m.unit!r}")
        if m.better not in METRIC_DIRECTIONS:
            problems.append(
                f"{name}: better must be one of {METRIC_DIRECTIONS}, got {m.better!r}"
            )
    return problems


def run_suite(
    suite: str = "smoke",
    pattern: str | None = None,
    tags: tuple[str, ...] = (),
    registry: Registry | None = None,
    progress: Callable[[str], None] | None = None,
    param_overrides: Mapping[str, Any] | None = None,
) -> BenchReport:
    """Run every scenario of ``suite`` (optionally filtered) into a report.

    A scenario that raises is recorded with its traceback in ``error``
    (and an empty metrics dict) rather than aborting the suite — the CLI
    turns any error into a non-zero exit.

    ``param_overrides`` replaces parameter values per scenario, but only
    for keys the scenario already declares — a scenario with no
    ``engine`` parameter is not handed one it never reads.  The report
    records the *effective* parameters, so an overridden run is never
    mistaken for a stock one when diffed later.
    """
    registry = registry if registry is not None else ensure_builtin_scenarios()
    report = BenchReport(suite=suite)
    selected = list(registry.iter(suite=suite, tags=tags, pattern=pattern))
    if not selected:
        raise ReproError(
            f"no scenarios selected (suite={suite!r}, pattern={pattern!r}, "
            f"tags={tags!r})"
        )
    for sc in selected:
        if param_overrides:
            applicable = {
                k: v for k, v in param_overrides.items() if k in sc.params
            }
            if applicable:
                sc = dataclasses.replace(sc, params={**sc.params, **applicable})
        if progress is not None:
            progress(f"running {sc.name} ...")
        t0 = time.perf_counter()
        try:
            out = sc.execute()
            error = None
            metrics = dict(out.metrics)
        except Exception:
            error = traceback.format_exc(limit=8)
            metrics = {}
        wall = time.perf_counter() - t0
        if error is None and "wall_s" in metrics:
            # The harness owns this name; silently replacing a scenario's
            # gated metric with ungated wall clock would hide it from CI.
            error = f"scenario {sc.name!r} defines the reserved metric 'wall_s'"
            metrics = {}
        if error is None:
            # A NaN/inf value or malformed unit/direction is this scenario's
            # defect; record it here so the report still saves (schema
            # validation would reject it) instead of one bad metric
            # discarding the whole run's output.
            problems = _metric_problems(metrics)
            if problems:
                error = (
                    f"scenario {sc.name!r} produced invalid metrics: "
                    + "; ".join(problems)
                )
                metrics = {}
        metrics["wall_s"] = Metric(wall, unit="s", better="info")
        report.add(
            ScenarioResult(
                name=sc.name,
                suite=sc.suite,
                tags=sc.tags,
                params={k: _jsonable(v) for k, v in sc.params.items()},
                metrics=metrics,
                wall_s=wall,
                error=error,
            )
        )
        if progress is not None:
            status = "FAILED" if error else "ok"
            progress(f"  {sc.name}: {status} ({wall:.2f}s)")
    return report


def _jsonable(value):
    """Parameters must survive a JSON round-trip; stringify anything odd."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)
