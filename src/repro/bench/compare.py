"""Regression gate: diff a candidate run against a committed baseline.

The smoke scenarios are deterministic simulations, so any metric drift at
all is a real behavior change; the default threshold exists only to leave
headroom for benign float noise from refactorings and across Python
versions.  Wall-clock (``better="info"``) metrics are reported, never
gated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.bench.results import BenchReport
from repro.errors import ReproError

#: Default maximum tolerated relative regression (5%).
DEFAULT_THRESHOLD = 0.05

#: Delta statuses that fail the gate.
FAILING = (
    "regression",
    "missing-scenario",
    "missing-metric",
    "scenario-error",
    "baseline-error",
    "direction-mismatch",
)


@dataclass(frozen=True)
class MetricDelta:
    """One compared quantity (or a structural problem found on the way)."""

    scenario: str
    metric: str
    status: str  # ok|regression|improvement|new|missing-*|scenario-error|info
    baseline: float | None = None
    candidate: float | None = None
    rel_change: float | None = None
    unit: str = ""

    @property
    def failed(self) -> bool:
        return self.status in FAILING

    def describe(self) -> str:
        where = f"{self.scenario} :: {self.metric}" if self.metric else self.scenario
        if self.status == "new":
            return f"{where}: new (not in baseline, not gated)"
        if self.status == "missing-scenario":
            return f"{where}: scenario present in baseline but absent from candidate"
        if self.status == "missing-metric":
            return f"{where}: metric present in baseline but absent from candidate"
        if self.status == "scenario-error":
            return f"{where}: scenario errored in the candidate run"
        if self.status == "baseline-error":
            return (
                f"{where}: baseline entry was recorded from an errored run — "
                "refresh the baseline from a clean run"
            )
        if self.status == "direction-mismatch":
            return (
                f"{where}: gating direction differs between baseline and "
                "candidate — refresh the baseline"
            )
        change = (
            f"{self.rel_change:+.2%}" if self.rel_change is not None else "n/a"
        )
        return (
            f"{where}: {self.baseline:g} -> {self.candidate:g} {self.unit} "
            f"({change})"
        )


def _relative_change(base: float, cand: float) -> float:
    if base == cand:
        return 0.0
    if base == 0:
        return math.inf if cand > 0 else -math.inf
    return (cand - base) / abs(base)


@dataclass
class ComparisonResult:
    """Every delta between two reports plus the gate verdict."""

    threshold: float
    deltas: list[MetricDelta] = field(default_factory=list)

    @property
    def failures(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.failed]

    @property
    def passed(self) -> bool:
        return not self.failures

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for d in self.deltas:
            out[d.status] = out.get(d.status, 0) + 1
        return out

    def format_report(self, max_rows: int = 30) -> str:
        counts = self.counts()
        lines = [
            f"bench compare: threshold {self.threshold:.1%} — "
            + ("PASS" if self.passed else "FAIL"),
            "  "
            + "  ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            + (f"  (total {len(self.deltas)} comparisons)" if self.deltas else ""),
        ]
        failures = self.failures
        if failures:
            lines.append("")
            lines.append(f"failures ({len(failures)}):")
            lines.extend(f"  - {d.describe()}" for d in failures[:max_rows])
            if len(failures) > max_rows:
                lines.append(f"  ... and {len(failures) - max_rows} more")
        improvements = [d for d in self.deltas if d.status == "improvement"]
        if improvements:
            lines.append("")
            lines.append(f"improvements ({len(improvements)}):")
            lines.extend(
                f"  + {d.describe()}"
                for d in sorted(
                    improvements, key=lambda d: abs(d.rel_change or 0), reverse=True
                )[:10]
            )
        news = [d for d in self.deltas if d.status == "new"]
        if news:
            lines.append("")
            lines.append(
                "new (not in baseline, not gated): "
                + ", ".join(sorted({d.scenario for d in news}))
            )
        return "\n".join(lines)


def compare_reports(
    candidate: BenchReport,
    baseline: BenchReport,
    threshold: float = DEFAULT_THRESHOLD,
    baseline_only: bool = False,
) -> ComparisonResult:
    """Gate ``candidate`` against ``baseline``.

    Fails on any gated metric regressing beyond ``threshold``, on
    scenarios or metrics that disappeared, and on scenarios that errored.
    New scenarios/metrics only present in the candidate are reported as
    ``new`` and do not fail the gate (they enter it once the baseline is
    refreshed).  Non-finite candidate values always gate as regressions,
    and mixing suites or schema versions (swapped arguments, a filtered
    run against a full baseline) is an operator error, not a comparison.

    With ``baseline_only`` the comparison is restricted to the baseline's
    scenarios and metrics: candidate-only entries are dropped entirely
    instead of reported as ``new``.  This is the mode for *focused*
    baselines (one report diffed against several baseline files, each
    gating its own slice) — without it every other slice shows up as a
    wall of ungated "new" noise, and a candidate-only scenario that
    errored would fail a gate that never covered it.
    """
    if candidate.suite != baseline.suite:
        raise ReproError(
            f"suite mismatch: candidate is {candidate.suite!r}, "
            f"baseline is {baseline.suite!r}"
        )
    if candidate.schema_version != baseline.schema_version:
        raise ReproError(
            f"schema version mismatch: candidate v{candidate.schema_version}, "
            f"baseline v{baseline.schema_version}"
        )
    result = ComparisonResult(threshold=threshold)
    for name, base_sc in sorted(baseline.scenarios.items()):
        cand_sc = candidate.scenarios.get(name)
        if base_sc.error is not None:
            # An errored baseline entry has no metrics, so every candidate
            # metric would fall in the ungated "new" bucket and the
            # scenario could never regress; refuse the vacuous pass.
            result.deltas.append(MetricDelta(name, "", "baseline-error"))
            continue
        if cand_sc is None:
            result.deltas.append(MetricDelta(name, "", "missing-scenario"))
            continue
        if cand_sc.error is not None:
            result.deltas.append(MetricDelta(name, "", "scenario-error"))
            continue
        for mname, base_m in sorted(base_sc.metrics.items()):
            cand_m = cand_sc.metrics.get(mname)
            if cand_m is None:
                if base_m.better != "info":
                    result.deltas.append(MetricDelta(name, mname, "missing-metric"))
                continue
            if cand_m.better != base_m.better:
                # Gating with the stale baseline direction would invert the
                # verdict, and an info->gated promotion would silently skip
                # gating; either way, force a baseline refresh.  This check
                # runs before the info skip so promotions are not ignored.
                result.deltas.append(MetricDelta(name, mname, "direction-mismatch"))
                continue
            if base_m.better == "info":
                continue
            rel = _relative_change(base_m.value, cand_m.value)
            worse = rel if base_m.better == "lower" else -rel
            if not math.isfinite(worse) or worse > threshold:
                # NaN compares False against any threshold and +/-inf
                # would read as a spectacular improvement; any non-finite
                # drift is a defect, so it fails the gate.
                status = "regression"
            elif worse < -threshold:
                status = "improvement"
            else:
                status = "ok"
            result.deltas.append(
                MetricDelta(
                    scenario=name,
                    metric=mname,
                    status=status,
                    baseline=base_m.value,
                    candidate=cand_m.value,
                    rel_change=rel,
                    unit=base_m.unit,
                )
            )
        if baseline_only:
            continue
        for mname in sorted(set(cand_sc.metrics) - set(base_sc.metrics)):
            if cand_sc.metrics[mname].better != "info":
                result.deltas.append(MetricDelta(name, mname, "new"))
    if baseline_only:
        return result
    for name in sorted(set(candidate.scenarios) - set(baseline.scenarios)):
        # A brand-new scenario is ungated, but one that errored must still
        # fail — otherwise an always-broken scenario slips into the next
        # baseline refresh unnoticed.
        status = "scenario-error" if candidate.scenarios[name].error else "new"
        result.deltas.append(MetricDelta(name, "", status))
    return result
