"""Versioned schema for ``BENCH_<suite>.json`` result files.

Hand-rolled validation (no jsonschema dependency): :func:`validate_report`
returns a list of human-readable problems, empty when the document is a
valid report.  The schema is intentionally small and append-only — bump
:data:`SCHEMA_VERSION` when a change would break old comparators.
"""

from __future__ import annotations

import math
from typing import Any

#: Current result-file schema version.  Comparators refuse to mix majors.
SCHEMA_VERSION = 1

#: Allowed values for a metric's ``better`` field.  ``info`` metrics
#: (wall-clock, speedup annotations) are reported but never gated.
METRIC_DIRECTIONS = ("lower", "higher", "info")

#: Required top-level keys of a report document.
REPORT_KEYS = ("schema_version", "suite", "created", "git_sha", "environment", "scenarios")

#: Required keys of one scenario entry.
SCENARIO_KEYS = ("suite", "tags", "params", "metrics", "wall_s", "error")

#: Required keys of one metric entry.
METRIC_KEYS = ("value", "unit", "better")


def _check_keys(doc: dict, keys: tuple[str, ...], where: str, problems: list[str]) -> bool:
    missing = [k for k in keys if k not in doc]
    if missing:
        problems.append(f"{where}: missing keys {missing}")
    return not missing


def validate_report(doc: Any) -> list[str]:
    """All schema violations in ``doc`` (empty list == valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"report must be a JSON object, got {type(doc).__name__}"]
    if not _check_keys(doc, REPORT_KEYS, "report", problems):
        return problems
    version = doc["schema_version"]
    if not isinstance(version, int) or version < 1:
        problems.append(f"schema_version must be a positive int, got {version!r}")
    elif version > SCHEMA_VERSION:
        problems.append(
            f"schema_version {version} is newer than supported {SCHEMA_VERSION}"
        )
    if not isinstance(doc["suite"], str) or not doc["suite"]:
        problems.append("suite must be a non-empty string")
    problems.extend(
        f"{key} must be a string"
        for key in ("created", "git_sha")
        if not isinstance(doc[key], str)
    )
    if not isinstance(doc["environment"], dict):
        problems.append("environment must be an object")
    scenarios = doc["scenarios"]
    if not isinstance(scenarios, dict):
        problems.append("scenarios must be an object keyed by scenario name")
        return problems
    for name, entry in scenarios.items():
        where = f"scenario {name!r}"
        if not isinstance(entry, dict):
            problems.append(f"{where}: must be an object")
            continue
        if not _check_keys(entry, SCENARIO_KEYS, where, problems):
            continue
        if not isinstance(entry["tags"], list):
            problems.append(f"{where}: tags must be a list")
        if not isinstance(entry["params"], dict):
            problems.append(f"{where}: params must be an object")
        if entry["error"] is not None and not isinstance(entry["error"], str):
            problems.append(f"{where}: error must be null or a string")
        if not isinstance(entry["wall_s"], (int, float)):
            problems.append(f"{where}: wall_s must be a number")
        metrics = entry["metrics"]
        if not isinstance(metrics, dict):
            problems.append(f"{where}: metrics must be an object")
            continue
        for mname, metric in metrics.items():
            mwhere = f"{where} metric {mname!r}"
            if not isinstance(metric, dict):
                problems.append(f"{mwhere}: must be an object")
                continue
            if not _check_keys(metric, METRIC_KEYS, mwhere, problems):
                continue
            if not isinstance(metric["value"], (int, float)):
                problems.append(f"{mwhere}: value must be a number")
            elif not math.isfinite(metric["value"]):
                # NaN/inf would both defeat the gate and produce JSON that
                # strict parsers reject.
                problems.append(f"{mwhere}: value must be finite")
            if metric["better"] not in METRIC_DIRECTIONS:
                problems.append(
                    f"{mwhere}: better must be one of {METRIC_DIRECTIONS}, "
                    f"got {metric['better']!r}"
                )
    return problems
