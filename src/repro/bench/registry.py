"""Scenario registry: the ``@scenario`` decorator, suites, tags, grids."""

from __future__ import annotations

import fnmatch
import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.bench.results import ScenarioOutput
from repro.errors import ReproError

#: Known suites, cheapest first.  ``smoke`` holds the deterministic
#: simulated scenarios (CI-gated against a committed baseline); ``full``
#: is a superset adding the wall-clock micro scenarios; ``scale`` holds
#: the control-plane scaling benchmarks (4k-256k simulated tasks);
#: ``collective`` holds the collector-rank aggregation benchmarks
#: (4k-64k tasks); ``repartition`` holds the m-readers-over-n-writers
#: read benchmarks (4k-64k writer streams); ``serve`` holds the read-
#: gateway load benchmarks (256-4096 concurrent sessions);
#: ``resilience`` holds the fault-and-recover benchmarks (buddy-replica
#: restore and torn-close shadow rebuild, 4k-64k tasks).  The latter
#: five are selected explicitly — they are *not* part of ``full``,
#: because tens of thousands of simulated tasks (or thousands of
#: concurrent sessions) per scenario is not a casual run.
SUITES = (
    "smoke", "full", "scale", "collective", "repartition", "serve",
    "resilience",
)


@dataclass
class ScenarioContext:
    """What a scenario function receives when executed."""

    params: dict[str, Any] = field(default_factory=dict)
    profile_name: str | None = None

    @property
    def profile(self):
        """The resolved :class:`~repro.fs.systems.SystemProfile` (lazy)."""
        name = self.params.get("system", self.profile_name)
        if name is None:
            raise ReproError("scenario has no machine profile configured")
        from repro.fs.systems import get_system

        return get_system(name)


@dataclass(frozen=True)
class Scenario:
    """One registered benchmark scenario."""

    name: str
    fn: Callable[[ScenarioContext], ScenarioOutput | Mapping[str, Any]]
    suite: str = "smoke"
    tags: tuple[str, ...] = ()
    params: Mapping[str, Any] = field(default_factory=dict)
    profile: str | None = None

    def __post_init__(self) -> None:
        if self.suite not in SUITES:
            raise ReproError(
                f"scenario {self.name!r}: unknown suite {self.suite!r}; "
                f"expected one of {SUITES}"
            )

    def in_suite(self, suite: str) -> bool:
        """Suite membership: ``full`` includes ``smoke`` but not ``scale``."""
        if suite not in SUITES:
            raise ReproError(f"unknown suite {suite!r}; expected one of {SUITES}")
        if suite == self.suite:
            return True
        return suite == "full" and self.suite == "smoke"

    def execute(self) -> ScenarioOutput:
        """Run the scenario and normalize its output."""
        ctx = ScenarioContext(params=dict(self.params), profile_name=self.profile)
        out = self.fn(ctx)
        if isinstance(out, ScenarioOutput):
            return out
        if isinstance(out, Mapping):
            return ScenarioOutput(metrics=dict(out))
        raise ReproError(
            f"scenario {self.name!r} returned {type(out).__name__}; "
            "expected ScenarioOutput or a metrics mapping"
        )


class Registry:
    """Named collection of scenarios with dedup and filtered iteration."""

    def __init__(self) -> None:
        self._scenarios: dict[str, Scenario] = {}

    def __len__(self) -> int:
        return len(self._scenarios)

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def register(self, sc: Scenario) -> Scenario:
        if sc.name in self._scenarios:
            raise ReproError(f"scenario {sc.name!r} is already registered")
        self._scenarios[sc.name] = sc
        return sc

    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            close = [n for n in self._scenarios if name in n]
            hint = f"; close matches: {sorted(close)[:4]}" if close else ""
            raise ReproError(f"unknown scenario {name!r}{hint}") from None

    def iter(
        self,
        suite: str | None = None,
        tags: tuple[str, ...] = (),
        pattern: str | None = None,
    ) -> Iterator[Scenario]:
        """Scenarios in registration order, optionally filtered.

        ``tags`` requires every listed tag; ``pattern`` is an fnmatch glob
        over the scenario name, with an exact-match fast path so bracketed
        grid names (``x[system=jugene]``) select themselves even though
        fnmatch would read the brackets as a character class.
        """
        for sc in self._scenarios.values():
            if suite is not None and not sc.in_suite(suite):
                continue
            if any(t not in sc.tags for t in tags):
                continue
            if (
                pattern is not None
                and sc.name != pattern
                and not fnmatch.fnmatch(sc.name, pattern)
            ):
                continue
            yield sc

    def scenario(
        self,
        name: str,
        suite: str = "smoke",
        tags: tuple[str, ...] = (),
        params: Mapping[str, Any] | None = None,
        profile: str | None = None,
        grid: Mapping[str, list[Any]] | None = None,
    ) -> Callable:
        """Decorator registering ``fn`` under ``name``.

        With ``grid``, one scenario is registered per point of the
        cartesian product, named ``name[k=v,...]`` with the grid values
        merged into ``params``.
        """

        def deco(fn: Callable) -> Callable:
            base = dict(params or {})
            for combo in _grid_points(grid):
                merged = {**base, **combo}
                suffix = (
                    "[" + ",".join(f"{k}={v}" for k, v in combo.items()) + "]"
                    if combo
                    else ""
                )
                self.register(
                    Scenario(
                        name=name + suffix,
                        fn=fn,
                        suite=suite,
                        tags=tuple(tags),
                        params=merged,
                        profile=profile,
                    )
                )
            return fn

        return deco


def _grid_points(grid: Mapping[str, list[Any]] | None) -> list[dict[str, Any]]:
    """Cartesian product of a parameter grid (one empty point if none)."""
    points: list[dict[str, Any]] = [{}]
    for key, values in (grid or {}).items():
        if not values:
            raise ReproError(f"grid axis {key!r} has no values")
        points = [{**p, key: v} for p in points for v in values]
    return points


#: The process-wide default registry, populated by ``repro.bench.scenarios``.
DEFAULT_REGISTRY = Registry()

#: Module-level decorator bound to the default registry.
scenario = DEFAULT_REGISTRY.scenario

_loaded = False


def ensure_builtin_scenarios() -> Registry:
    """Import the built-in scenario definitions exactly once.

    ``_loaded`` flips only after a successful import: a failed first load
    (broken dependency, bad registration) would otherwise leave later
    lookups reporting misleading "unknown scenario" errors instead of
    retrying and surfacing the real exception.
    """
    global _loaded
    if not _loaded:
        before = set(DEFAULT_REGISTRY._scenarios)
        try:
            importlib.import_module("repro.bench.scenarios")
        except BaseException:
            # Python drops the failed module from sys.modules but its
            # decorators already ran; drop those partial registrations too,
            # or the retry's re-import dies on "already registered" instead
            # of surfacing the real error again.
            for name in set(DEFAULT_REGISTRY._scenarios) - before:
                del DEFAULT_REGISTRY._scenarios[name]
            raise
        _loaded = True
    return DEFAULT_REGISTRY


def get_scenario(name: str) -> Scenario:
    """Look up a built-in scenario by exact name."""
    return ensure_builtin_scenarios().get(name)


def iter_scenarios(
    suite: str | None = None,
    tags: tuple[str, ...] = (),
    pattern: str | None = None,
) -> Iterator[Scenario]:
    """Iterate built-in scenarios with the same filters as Registry.iter."""
    return ensure_builtin_scenarios().iter(suite=suite, tags=tags, pattern=pattern)
