"""``core-io`` scenarios: copy counts and backend-call counts as metrics.

The zero-copy/vectored data plane makes two promises (ISSUE 2):

1. a chunk-spanning ``fwrite`` of N fragments crosses the backend
   boundary **once** (one ``scatter_write``), not N times;
2. a ``memoryview`` payload reaches the backend with **zero**
   intermediate ``bytes()`` materializations.

These scenarios measure both with the instrumented
:class:`~repro.backends.instrument.CountingBackend` over the simulated
file system, which makes every count fully deterministic — so the smoke
baseline gates them like any other metric and a reintroduced copy or a
de-vectorized write path fails CI.  A wall-clock throughput scenario
(``better="info"``) rides along for trending.
"""

from __future__ import annotations

import time

from repro.backends.instrument import CountingBackend
from repro.backends.simfs_backend import SimBackend
from repro.bench.registry import scenario
from repro.bench.results import Metric, ScenarioOutput
from repro.fs.simfs import SimFS
from repro.sion import serial
from repro.sion.buffering import CoalescingWriter

KiB = 1024

#: Alignment granularity for every core-io scenario (deterministic layout).
FSBLK = 4 * KiB


def _counting_backend() -> CountingBackend:
    return CountingBackend(SimBackend(SimFS(blocksize_override=FSBLK)))


def _payload(nbytes: int) -> bytearray:
    return bytearray(bytes(range(256)) * (nbytes // 256) + b"\xAA" * (nbytes % 256))


def _delta(after: dict[str, int], before: dict[str, int]) -> dict[str, int]:
    return {k: after[k] - before[k] for k in after}


def _count_metrics(prefix: str, d: dict[str, int]) -> dict[str, Metric]:
    """Deterministic counts, gated lower-is-better."""
    return {
        f"{prefix}_backend_calls": Metric(d["data_write_calls"], "calls", "lower"),
        f"{prefix}_fragments": Metric(d["fragments_written"], "fragments", "lower"),
        f"{prefix}_copies": Metric(d["copied_fragments"], "copies", "lower"),
        f"{prefix}_seeks": Metric(d["seeks"], "calls", "lower"),
    }


# --------------------------------------------------------------------------
# Serial write path: one chunk-spanning fwrite.


@scenario(
    "core-io/fwrite-span",
    suite="smoke",
    tags=("core_io", "zero-copy"),
    params={"chunksize": 16 * KiB, "payload_bytes": 104 * KiB},
)
def core_io_fwrite_span(ctx) -> ScenarioOutput:
    chunksize, nbytes = ctx.params["chunksize"], ctx.params["payload_bytes"]
    nfrag = -(-nbytes // chunksize)
    backend = _counting_backend()
    payload = _payload(nbytes)
    with serial.open(
        "/span.sion", "w", chunksizes=[chunksize], fsblksize=FSBLK, backend=backend
    ) as f:
        f.seek(0, 0, 0)
        backend.track_source(payload)
        before = backend.snapshot()
        f.fwrite(memoryview(payload))
        after = backend.snapshot()
        backend.clear_sources()
    d = _delta(after, before)
    metrics = _count_metrics("fwrite", d)
    text = (
        f"fwrite of {nbytes // KiB} KiB across {nfrag} chunks of "
        f"{chunksize // KiB} KiB: {d['data_write_calls']} backend call(s), "
        f"{d['fragments_written']} fragment(s), {d['copied_fragments']} "
        f"copie(s), {d['seeks']} seek(s)"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=d)


# --------------------------------------------------------------------------
# Serial read path: one chunk-spanning fread over the same multifile.


@scenario(
    "core-io/read-gather",
    suite="smoke",
    tags=("core_io",),
    params={"chunksize": 16 * KiB, "payload_bytes": 104 * KiB},
)
def core_io_read_gather(ctx) -> ScenarioOutput:
    chunksize, nbytes = ctx.params["chunksize"], ctx.params["payload_bytes"]
    backend = _counting_backend()
    payload = _payload(nbytes)
    with serial.open(
        "/rg.sion", "w", chunksizes=[chunksize], fsblksize=FSBLK, backend=backend
    ) as f:
        f.seek(0, 0, 0)
        f.fwrite(payload)
    with serial.open("/rg.sion", "r", backend=backend) as f:
        f.seek(0, 0, 0)
        before = backend.snapshot()
        data = f.fread(nbytes)
        after = backend.snapshot()
    if data != bytes(payload):
        raise AssertionError("read-gather returned corrupted payload")
    d = _delta(after, before)
    metrics = {
        "fread_backend_calls": Metric(d["data_read_calls"], "calls", "lower"),
        "fread_seeks": Metric(d["seeks"], "calls", "lower"),
    }
    text = (
        f"fread of {nbytes // KiB} KiB across "
        f"{-(-nbytes // chunksize)} chunks: {d['data_read_calls']} backend "
        f"call(s), {d['seeks']} seek(s)"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=d)


# --------------------------------------------------------------------------
# Coalesced small writes plus the large-write bypass.


@scenario(
    "core-io/coalesced-flush",
    suite="smoke",
    tags=("core_io", "zero-copy"),
    params={
        "chunksize": 4 * KiB,
        "buffer_size": 16 * KiB,
        "record_bytes": 1 * KiB,
        "records": 48,
        "bypass_bytes": 32 * KiB,
    },
)
def core_io_coalesced(ctx) -> ScenarioOutput:
    p = ctx.params
    backend = _counting_backend()
    with serial.open(
        "/co.sion", "w", chunksizes=[p["chunksize"]], fsblksize=FSBLK, backend=backend
    ) as f:
        f.seek(0, 0, 0)
        w = CoalescingWriter(f, buffer_size=p["buffer_size"])
        record = _payload(p["record_bytes"])
        before = backend.snapshot()
        for _ in range(p["records"]):
            w.write(record)
        w.flush()
        mid = backend.snapshot()
        bypass = _payload(p["bypass_bytes"])
        backend.track_source(bypass)
        w.write(memoryview(bypass))
        after = backend.snapshot()
        backend.clear_sources()
        w.close()
        flushes = w.flushes
    coalesced = _delta(mid, before)
    direct = _delta(after, mid)
    metrics = {
        "coalesced_backend_calls": Metric(
            coalesced["data_write_calls"], "calls", "lower"
        ),
        "coalesced_flushes": Metric(flushes, "flushes", "lower"),
        "bypass_backend_calls": Metric(direct["data_write_calls"], "calls", "lower"),
        "bypass_copies": Metric(direct["copied_fragments"], "copies", "lower"),
    }
    text = (
        f"{p['records']}x{p['record_bytes'] // KiB} KiB coalesced into "
        f"{p['buffer_size'] // KiB} KiB flushes over {p['chunksize'] // KiB} KiB "
        f"chunks: {coalesced['data_write_calls']} backend call(s); "
        f"{p['bypass_bytes'] // KiB} KiB bypass: {direct['data_write_calls']} "
        f"call(s), {direct['copied_fragments']} copie(s)"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=(coalesced, direct))


# --------------------------------------------------------------------------
# Parallel write/read path (TaskStream) via the collective API.


@scenario(
    "core-io/paropen-span",
    suite="smoke",
    tags=("core_io", "zero-copy"),
    params={"ntasks": 2, "chunksize": 4 * KiB, "payload_bytes": 18 * KiB},
)
def core_io_paropen_span(ctx) -> ScenarioOutput:
    from repro.simmpi import run_spmd
    from repro.sion import paropen

    p = ctx.params
    backend = _counting_backend()
    payloads = [_payload(p["payload_bytes"]) for _ in range(p["ntasks"])]

    def write_task(comm):
        f = paropen(
            "/par.sion", "w", comm, chunksize=p["chunksize"],
            fsblksize=FSBLK, backend=backend,
        )
        backend.track_source(payloads[comm.rank])
        comm.barrier()
        before = backend.snapshot() if comm.rank == 0 else None
        comm.barrier()  # snapshot taken before any task starts writing
        f.fwrite(memoryview(payloads[comm.rank]))
        comm.barrier()  # every task done writing before the second snapshot
        after = backend.snapshot() if comm.rank == 0 else None
        comm.barrier()
        f.parclose()
        return (before, after) if comm.rank == 0 else None

    snaps = run_spmd(p["ntasks"], write_task)
    backend.clear_sources()
    before, after = snaps[0]

    def read_task(comm):
        f = paropen("/par.sion", "r", backend=backend, comm=comm)
        data = f.read_all()
        f.parclose()
        return data

    datas = run_spmd(p["ntasks"], read_task)
    if datas != [bytes(q) for q in payloads]:
        raise AssertionError("paropen roundtrip corrupted payloads")
    d = _delta(after, before)
    metrics = _count_metrics("par_fwrite", d)
    nfrag = -(-p["payload_bytes"] // p["chunksize"]) * p["ntasks"]
    text = (
        f"{p['ntasks']} tasks x {p['payload_bytes'] // KiB} KiB over "
        f"{p['chunksize'] // KiB} KiB chunks ({nfrag} fragments total): "
        f"{d['data_write_calls']} backend call(s), {d['copied_fragments']} "
        f"copie(s), {d['seeks']} seek(s)"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=d)


# --------------------------------------------------------------------------
# Wall-clock throughput through the full serial stack (info: never gated).


@scenario(
    "core-io/throughput",
    suite="smoke",
    tags=("core_io", "wallclock"),
    params={"chunksize": 256 * KiB, "payload_bytes": 8 * 1024 * KiB, "rounds": 3},
)
def core_io_throughput(ctx) -> ScenarioOutput:
    p = ctx.params
    payload = _payload(p["payload_bytes"])
    best = float("inf")
    calls = None
    for r in range(p["rounds"]):
        backend = _counting_backend()
        t0 = time.perf_counter()
        with serial.open(
            f"/tp{r}.sion", "w", chunksizes=[p["chunksize"]],
            fsblksize=FSBLK, backend=backend,
        ) as f:
            f.seek(0, 0, 0)
            f.fwrite(memoryview(payload))
        best = min(best, time.perf_counter() - t0)
        calls = backend.snapshot()
    assert calls is not None
    metrics = {
        "write_wall_s": Metric(best, better="info"),
        "write_mb_s": Metric(p["payload_bytes"] / best / 1e6, "MB/s", "info"),
        "cycle_backend_calls": Metric(calls["data_write_calls"], "calls", "lower"),
    }
    text = (
        f"{p['payload_bytes'] // KiB} KiB via fwrite + close: best of "
        f"{p['rounds']} = {best * 1e3:.1f} ms "
        f"({p['payload_bytes'] / best / 1e6:.0f} MB/s, "
        f"{calls['data_write_calls']} backend data calls)"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=calls)
