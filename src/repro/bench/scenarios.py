"""Built-in scenario definitions.

Every figure/table benchmark under ``benchmarks/`` is registered here so
the CLI runner, the regression gate, and the pytest wrappers all execute
the same code.  Scenarios in the ``smoke`` suite measure *deterministic*
simulated costs (virtual seconds / modelled MB/s) — byte-identical across
runs, so the comparator can gate them tightly.  The ``full`` suite adds
wall-clock micro scenarios of the real library (``better="info"``: never
gated, still recorded).
"""

from __future__ import annotations

import time

from repro.analysis.model import predict_create_time, predict_sion_create_time
from repro.analysis.plots import ascii_chart
from repro.analysis.results import Series, format_table, human_count
from repro.bench.registry import scenario
from repro.bench.results import Metric, ScenarioOutput, series_metrics
from repro.fs.events import Engine
from repro.fs.interference import bystander_latency
from repro.fs.metadata import FifoMetadataService, MetadataCosts, MetadataOp
from repro.workloads import alignment, archive, bandwidth, filecreate, taskbw
from repro.workloads.common import parallel_io
from repro.workloads.mp2c_io import crossover_particles_m, run_fig6
from repro.workloads.scalasca_io import run_table2
from repro.workloads.scaling import analyzer_load_times, mp2c_weak_scaling

KiB = 1024
TB = 10**12

# --------------------------------------------------------------------------
# Fig. 3 — parallel file creation / opening vs. SION multifile creation.


def _fig3_output(label: str, rows) -> ScenarioOutput:
    series = Series(label, "#tasks", "time (s)", xs=[r.ntasks for r in rows])
    series.add_curve("create files", [r.create_files_s for r in rows])
    series.add_curve("open existing", [r.open_existing_s for r in rows])
    series.add_curve("SION create", [r.sion_create_s for r in rows])
    text = format_table(series)
    text += "\n\nspeedup (create/SION): " + "  ".join(
        f"{human_count(r.ntasks)}:{r.create_speedup:.0f}x" for r in rows
    )
    metrics = series_metrics(series)
    metrics["create_speedup_at_max"] = Metric(
        rows[-1].create_speedup, unit="x", better="higher"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=rows)


@scenario(
    "fig3/filecreate-jugene",
    suite="smoke",
    tags=("fig3", "create", "jugene"),
    params={"task_counts": filecreate.JUGENE_TASK_COUNTS, "sion_nfiles": 1},
    profile="jugene",
)
def fig3_jugene(ctx) -> ScenarioOutput:
    rows = filecreate.run_fig3(
        ctx.profile, ctx.params["task_counts"], ctx.params["sion_nfiles"]
    )
    return _fig3_output("fig3a", rows)


@scenario(
    "fig3/filecreate-jaguar",
    suite="smoke",
    tags=("fig3", "create", "jaguar"),
    params={"task_counts": filecreate.JAGUAR_TASK_COUNTS, "sion_nfiles": 16},
    profile="jaguar",
)
def fig3_jaguar(ctx) -> ScenarioOutput:
    rows = filecreate.run_fig3(
        ctx.profile, ctx.params["task_counts"], ctx.params["sion_nfiles"]
    )
    return _fig3_output("fig3b", rows)


# --------------------------------------------------------------------------
# Fig. 4 — bandwidth over the number of physical files.


@scenario(
    "fig4/nfiles-jugene",
    suite="smoke",
    tags=("fig4", "bandwidth", "jugene"),
    profile="jugene",
)
def fig4_jugene(ctx) -> ScenarioOutput:
    pts = bandwidth.run_fig4a(ctx.profile)
    series = Series("fig4a", "#files", "MB/s", xs=[p.nfiles for p in pts])
    series.add_curve("write", [p.write_mb_s for p in pts])
    series.add_curve("read", [p.read_mb_s for p in pts])
    return ScenarioOutput(
        metrics=series_metrics(series, unit="MB/s", better="higher"),
        text=format_table(series),
        raw=pts,
    )


@scenario(
    "fig4/nfiles-jaguar",
    suite="smoke",
    tags=("fig4", "bandwidth", "jaguar"),
    profile="jaguar",
)
def fig4_jaguar(ctx) -> ScenarioOutput:
    res = bandwidth.run_fig4b(ctx.profile)
    series = Series("fig4b", "#files", "MB/s", xs=[p.nfiles for p in res.default])
    series.add_curve("write (default)", [p.write_mb_s for p in res.default])
    series.add_curve("read (default)", [p.read_mb_s for p in res.default])
    series.add_curve("write (optimized)", [p.write_mb_s for p in res.optimized])
    series.add_curve("read (optimized)", [p.read_mb_s for p in res.optimized])
    return ScenarioOutput(
        metrics=series_metrics(series, unit="MB/s", better="higher"),
        text=format_table(series),
        raw=res,
    )


# --------------------------------------------------------------------------
# Fig. 5 — SION vs. task-local bandwidth over task counts.


def _fig5_output(label: str, pts) -> ScenarioOutput:
    series = Series(label, "#tasks", "MB/s", xs=[p.ntasks for p in pts])
    series.add_curve("SION write", [p.sion_write for p in pts])
    series.add_curve("SION read", [p.sion_read for p in pts])
    series.add_curve("task-local write", [p.tasklocal_write for p in pts])
    series.add_curve("task-local read", [p.tasklocal_read for p in pts])
    text = format_table(series) + "\n\n" + ascii_chart(series, log_x=True)
    return ScenarioOutput(
        metrics=series_metrics(series, unit="MB/s", better="higher"),
        text=text,
        raw=pts,
    )


@scenario(
    "fig5/taskbw-jugene",
    suite="smoke",
    tags=("fig5", "bandwidth", "jugene"),
    profile="jugene",
)
def fig5_jugene(ctx) -> ScenarioOutput:
    return _fig5_output("fig5a", taskbw.run_fig5a(ctx.profile))


@scenario(
    "fig5/taskbw-jaguar",
    suite="smoke",
    tags=("fig5", "bandwidth", "jaguar"),
    profile="jaguar",
)
def fig5_jaguar(ctx) -> ScenarioOutput:
    return _fig5_output("fig5b", taskbw.run_fig5b(ctx.profile))


# --------------------------------------------------------------------------
# Fig. 6 — MP2C restart I/O on 1000 cores.


@scenario(
    "fig6/mp2c-restart",
    suite="smoke",
    tags=("fig6", "mp2c", "jugene"),
    profile="jugene",
)
def fig6_mp2c(ctx) -> ScenarioOutput:
    pts = run_fig6(ctx.profile)
    series = Series("fig6", "Mio. particles", "time (s)", xs=[p.particles_m for p in pts])
    series.add_curve("write, SION", [p.sion_write_s for p in pts])
    series.add_curve("read, SION", [p.sion_read_s for p in pts])
    series.add_curve("write", [p.single_write_s for p in pts])
    series.add_curve("read", [p.single_read_s for p in pts])
    text = format_table(series)
    text += "\n\n" + ascii_chart(series, log_x=True, log_y=True)
    cross = crossover_particles_m(pts)
    by_m = {p.particles_m: p for p in pts}
    text += (
        f"\n\ncrossover at ~{cross} M particles; "
        f"speedup at 33 M: write {by_m[33.0].write_speedup:.0f}x, "
        f"read {by_m[33.0].read_speedup:.0f}x (paper: 1-2 orders of magnitude)"
    )
    metrics = series_metrics(series)
    metrics["write_speedup_at_33M"] = Metric(
        by_m[33.0].write_speedup, unit="x", better="higher"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=pts)


# --------------------------------------------------------------------------
# Table 1 — block alignment, and its ablation sweep.


@scenario(
    "table1/alignment",
    suite="smoke",
    tags=("table1", "alignment", "jugene"),
    profile="jugene",
)
def table1_alignment(ctx) -> ScenarioOutput:
    res = alignment.run_table1(ctx.profile)
    rows = [
        "#tasks  data      blksize  write MB/s  read MB/s",
        "------  --------  -------  ----------  ---------",
        f"{res.aligned.ntasks:>6}  {res.aligned.data_bytes // 10**9:>5} GB  "
        f"{res.aligned.blksize // 1024:>4} KB  {res.aligned.write_mb_s:>10.1f}  "
        f"{res.aligned.read_mb_s:>9.1f}",
        f"{res.unaligned.ntasks:>6}  {res.unaligned.data_bytes // 10**9:>5} GB  "
        f"{res.unaligned.blksize // 1024:>4} KB  {res.unaligned.write_mb_s:>10.1f}  "
        f"{res.unaligned.read_mb_s:>9.1f}",
        "",
        f"factors: write {res.write_factor:.2f}x (paper 2.53x)   "
        f"read {res.read_factor:.2f}x (paper 1.78x)",
    ]
    metrics = {
        "aligned_write_mb_s": Metric(res.aligned.write_mb_s, "MB/s", "higher"),
        "aligned_read_mb_s": Metric(res.aligned.read_mb_s, "MB/s", "higher"),
        "unaligned_write_mb_s": Metric(res.unaligned.write_mb_s, "MB/s", "higher"),
        "unaligned_read_mb_s": Metric(res.unaligned.read_mb_s, "MB/s", "higher"),
        "write_factor": Metric(res.write_factor, "x", "info"),
        "read_factor": Metric(res.read_factor, "x", "info"),
    }
    return ScenarioOutput(metrics=metrics, text="\n".join(rows), raw=res)


#: Block sizes for the alignment ablation (2 MiB true block downward).
ALIGNMENT_SWEEP_BLKSIZES = [
    2048 * KiB, 1024 * KiB, 512 * KiB, 128 * KiB, 64 * KiB, 16 * KiB, 4 * KiB,
]


@scenario(
    "ablation/alignment-sweep",
    suite="smoke",
    tags=("ablation", "alignment", "jugene"),
    params={"blk_sizes": ALIGNMENT_SWEEP_BLKSIZES},
    profile="jugene",
)
def ablation_alignment_sweep(ctx) -> ScenarioOutput:
    rows = alignment.alignment_sweep(ctx.profile, ctx.params["blk_sizes"])
    series = Series(
        "alignment-sweep", "blk KiB", "MB/s", xs=[r.blksize // KiB for r in rows]
    )
    series.add_curve("write", [r.write_mb_s for r in rows])
    series.add_curve("read", [r.read_mb_s for r in rows])
    base_w = rows[0].write_mb_s
    series.add_curve("write penalty", [base_w / r.write_mb_s for r in rows])
    metrics = series_metrics(
        series,
        unit="MB/s",
        better="higher",
        overrides={"write penalty": ("x", "lower")},
    )
    return ScenarioOutput(metrics=metrics, text=format_table(series), raw=rows)


# --------------------------------------------------------------------------
# Table 2 — Scalasca trace activation and write bandwidth.


@scenario(
    "table2/scalasca",
    suite="smoke",
    tags=("table2", "scalasca", "jugene"),
    profile="jugene",
)
def table2_scalasca(ctx) -> ScenarioOutput:
    res = run_table2(ctx.profile)
    rows = [
        "I/O type    #tasks  trace size  activation  write BW",
        "----------  ------  ----------  ----------  ---------",
    ]
    rows.extend(
        f"{row.io_type:<10}  {row.ntasks:>6}  "
        f"{row.trace_bytes / 10**9:>7.0f} GB  {row.activation_s:>8.1f} s  "
        f"{row.write_bw_mb_s:>6.0f} MB/s"
        for row in (res.tasklocal, res.sion)
    )
    rows.append("")
    rows.append(
        f"activation speedup: {res.activation_speedup:.1f}x (paper: 13.1x; "
        "the paper's own Fig. 3a implies ~8x at 32K under the conditions it "
        "reports — production-run variance, see EXPERIMENTS.md)"
    )
    metrics = {
        "tasklocal_activation_s": Metric(res.tasklocal.activation_s),
        "sion_activation_s": Metric(res.sion.activation_s),
        "tasklocal_write_bw_mb_s": Metric(res.tasklocal.write_bw_mb_s, "MB/s", "higher"),
        "sion_write_bw_mb_s": Metric(res.sion.write_bw_mb_s, "MB/s", "higher"),
        "activation_speedup": Metric(res.activation_speedup, "x", "info"),
    }
    return ScenarioOutput(metrics=metrics, text="\n".join(rows), raw=res)


# --------------------------------------------------------------------------
# Ablation — tape-archive handling of one vs. 32K files.


@scenario(
    "ablation/tape-archive",
    suite="smoke",
    tags=("ablation", "archive"),
    params={"sweep_task_counts": [1024, 4096, 16384, 65536]},
)
def ablation_tape_archive(ctx) -> ScenarioOutput:
    cmp_ = archive.run_archive_comparison()
    lines = [
        "scenario: 1470 GB of traces, 32K tasks, 4 interleaved archive users",
        "",
        f"archive   task-local: {cmp_.tasklocal_archive_s:>9.0f} s   "
        f"multifile (16): {cmp_.multifile_archive_s:>7.0f} s   "
        f"speedup {cmp_.archive_speedup:.1f}x",
        f"retrieve  task-local: {cmp_.tasklocal_retrieve_s:>9.0f} s   "
        f"multifile (16): {cmp_.multifile_retrieve_s:>7.0f} s   "
        f"speedup {cmp_.retrieve_speedup:.1f}x",
    ]
    sweep = archive.sweep_task_counts(ctx.params["sweep_task_counts"])
    series = Series("archive-sweep", "#tasks", "seconds", xs=[p.ntasks for p in sweep])
    series.add_curve(
        "archive task-local", [p.comparison.tasklocal_archive_s for p in sweep]
    )
    series.add_curve(
        "archive multifile", [p.comparison.multifile_archive_s for p in sweep]
    )
    series.add_curve(
        "retrieve task-local", [p.comparison.tasklocal_retrieve_s for p in sweep]
    )
    series.add_curve(
        "retrieve multifile", [p.comparison.multifile_retrieve_s for p in sweep]
    )
    metrics = series_metrics(series)
    metrics["archive_speedup"] = Metric(cmp_.archive_speedup, "x", "higher")
    metrics["retrieve_speedup"] = Metric(cmp_.retrieve_speedup, "x", "higher")
    return ScenarioOutput(
        metrics=metrics,
        text="\n".join(lines) + "\n\n" + format_table(series),
        raw=(cmp_, sweep),
    )


# --------------------------------------------------------------------------
# Ablation — create-storm collateral damage on a bystander.

STORM_SIZES = [0, 1024, 4096, 16384, 65536]


@scenario(
    "ablation/interference",
    suite="smoke",
    tags=("ablation", "metadata", "jugene"),
    params={"storm_sizes": STORM_SIZES},
    profile="jugene",
)
def ablation_interference(ctx) -> ScenarioOutput:
    costs = ctx.profile.metadata_costs
    rows = [bystander_latency(costs, n) for n in ctx.params["storm_sizes"]]
    series = Series("interference", "storm ops", "seconds", xs=[r.storm_ops for r in rows])
    series.add_curve("bystander latency", [r.storm_latency_s for r in rows])
    series.add_curve("slowdown", [r.slowdown for r in rows])
    sion_like = bystander_latency(costs, 16)
    text = format_table(series) + (
        f"\n\nduring a SION creation (16 creates) the same bystander waits "
        f"{sion_like.storm_latency_s * 1e3:.1f} ms — the disruption simply "
        "does not happen"
    )
    metrics = series_metrics(series)
    metrics["sion_bystander_latency_s"] = Metric(sion_like.storm_latency_s)
    return ScenarioOutput(metrics=metrics, text=text, raw=(rows, sion_like))


# --------------------------------------------------------------------------
# Ablation — collective metadata handling vs. naive alternatives.

METADATA_TASK_COUNTS = [1024, 4096, 16384, 65536]

#: Serialized per-task metablock update (lock grab + small write).
PER_TASK_UPDATE = 2.0e-4


def naive_metadata_time(ntasks: int) -> float:
    """Every task appends its own entry to the shared metablock."""
    engine = Engine()
    costs = MetadataCosts(create=PER_TASK_UPDATE)
    svc = FifoMetadataService(engine, costs, name="metablock")
    done: list[float] = []
    for t in range(ntasks):
        svc.submit(MetadataOp("create", f"meta{t}"), lambda ts, op: done.append(ts))
    engine.run()
    return max(done)


def metadata_exchange_sweep(profile, task_counts):
    """(ntasks, collective, naive-metablock, per-task-files) rows."""
    rows = []
    for n in task_counts:
        sion = filecreate.sion_create_time(profile, n, 1)
        rows.append(
            (
                n,
                sion,
                naive_metadata_time(n) + sion,
                filecreate.tasklocal_metadata_time(profile, n, "create"),
            )
        )
    return rows


@scenario(
    "ablation/metadata-exchange",
    suite="smoke",
    tags=("ablation", "metadata", "jugene"),
    params={"task_counts": METADATA_TASK_COUNTS},
    profile="jugene",
)
def ablation_metadata_exchange(ctx) -> ScenarioOutput:
    rows = metadata_exchange_sweep(ctx.profile, ctx.params["task_counts"])
    series = Series("metadata-exchange", "#tasks", "seconds", xs=[r[0] for r in rows])
    series.add_curve("collective (SION)", [r[1] for r in rows])
    series.add_curve("per-task metablock writes", [r[2] for r in rows])
    series.add_curve("per-task files", [r[3] for r in rows])
    return ScenarioOutput(
        metrics=series_metrics(series), text=format_table(series), raw=rows
    )


# --------------------------------------------------------------------------
# Ablation — choosing the number of physical files.

NFILES_TRADEOFF = [1, 2, 4, 8, 16, 32, 64, 128]


def nfiles_tradeoff_times(profile, ntasks: int, nfiles_list):
    """(nfiles, create, write-1TB, total) rows for a 1 TB checkpoint."""
    out = []
    for nf in nfiles_list:
        create = filecreate.sion_create_time(profile, ntasks, nf)
        io = parallel_io(profile, ntasks, 1 * TB, "write", nfiles=nf)
        out.append((nf, create, io.time_s, create + io.time_s))
    return out


@scenario(
    "ablation/nfiles-tradeoff",
    suite="smoke",
    tags=("ablation", "bandwidth", "jugene"),
    params={"ntasks": 65536, "nfiles": NFILES_TRADEOFF},
    profile="jugene",
)
def ablation_nfiles_tradeoff(ctx) -> ScenarioOutput:
    rows = nfiles_tradeoff_times(ctx.profile, ctx.params["ntasks"], ctx.params["nfiles"])
    series = Series("nfiles-tradeoff", "#files", "seconds", xs=[r[0] for r in rows])
    series.add_curve("create", [r[1] for r in rows])
    series.add_curve("write 1TB", [r[2] for r in rows])
    series.add_curve("total", [r[3] for r in rows])
    return ScenarioOutput(
        metrics=series_metrics(series), text=format_table(series), raw=rows
    )


# --------------------------------------------------------------------------
# Weak scaling — MP2C checkpoints and analyzer trace loads.

SCALING_TASK_COUNTS = [1024, 4096, 16384, 65536]


@scenario(
    "weak-scaling/mp2c",
    suite="smoke",
    tags=("scaling", "mp2c", "jugene"),
    params={"task_counts": SCALING_TASK_COUNTS},
    profile="jugene",
)
def weak_scaling_mp2c(ctx) -> ScenarioOutput:
    pts = mp2c_weak_scaling(ctx.profile, ctx.params["task_counts"])
    series = Series("weak-scaling", "#tasks", "seconds", xs=[p.ntasks for p in pts])
    series.add_curve("SION write", [p.sion_write_s for p in pts])
    series.add_curve("single-file write", [p.single_write_s for p in pts])
    series.add_curve("speedup", [p.speedup for p in pts])
    metrics = series_metrics(series, overrides={"speedup": ("x", "higher")})
    return ScenarioOutput(metrics=metrics, text=format_table(series), raw=pts)


@scenario(
    "weak-scaling/analyzer-load",
    suite="smoke",
    tags=("scaling", "scalasca", "jugene"),
    params={"task_counts": SCALING_TASK_COUNTS},
    profile="jugene",
)
def weak_scaling_analyzer(ctx) -> ScenarioOutput:
    pts = analyzer_load_times(ctx.profile, ctx.params["task_counts"])
    series = Series("analyzer-load", "#tasks", "seconds", xs=[p.ntasks for p in pts])
    series.add_curve("task-local open", [p.tasklocal_open_s for p in pts])
    series.add_curve("SION open", [p.sion_open_s for p in pts])
    text = format_table(series) + "\n\nspeedup: " + "  ".join(
        f"{human_count(p.ntasks)}:{p.speedup:.0f}x" for p in pts
    )
    return ScenarioOutput(metrics=series_metrics(series), text=text, raw=pts)


# --------------------------------------------------------------------------
# Extrapolation — the scaling argument at exascale task counts (both
# machines share one scenario body: a parameter-grid registration).

EXTRAPOLATION_TASK_COUNTS = [65536, 131072, 262144, 524288, 1048576]


def extrapolation_sweep(profile, task_counts):
    """(ntasks, create, open, sion-create-32-files) model predictions."""
    return [
        (
            n,
            predict_create_time(profile, n, "create"),
            predict_create_time(profile, n, "open"),
            predict_sion_create_time(profile, n, 32),
        )
        for n in task_counts
    ]


@scenario(
    "extrapolation/create",
    suite="smoke",
    tags=("extrapolation", "model"),
    params={"task_counts": EXTRAPOLATION_TASK_COUNTS},
    grid={"system": ["jugene", "jaguar"]},
)
def extrapolation_create(ctx) -> ScenarioOutput:
    rows = extrapolation_sweep(ctx.profile, ctx.params["task_counts"])
    series = Series("extrapolation", "#tasks", "seconds", xs=[r[0] for r in rows])
    series.add_curve("create files", [r[1] for r in rows])
    series.add_curve("open existing", [r[2] for r in rows])
    series.add_curve("SION create (32 files)", [r[3] for r in rows])
    text = format_table(series)
    per_m = {n: c for n, c, _, _ in rows}
    text += (
        f"\n\nat 1M tasks: {per_m[1048576] / 60:.0f} minutes just to create the "
        f"task-local files — even *opening* existing ones costs "
        f"{rows[-1][2] / 60:.0f} minutes per run; the SION multifile stays at "
        f"{rows[-1][3]:.0f} s"
    )
    return ScenarioOutput(metrics=series_metrics(series), text=text, raw=rows)


# --------------------------------------------------------------------------
# Micro — wall-clock measurements of the real library (full suite only;
# ``better="info"``: recorded for trending, never regression-gated).

MICRO_NTASKS = 8
MICRO_CHUNK = 64 * KiB
MICRO_PAYLOAD_BYTES = 256 * KiB


def micro_paropen_roundtrip(tmp_dir: str) -> dict[str, float]:
    """Write and read back one multifile with the real library."""
    from repro.backends.localfs import LocalBackend
    from repro.simmpi import run_spmd
    from repro.sion import paropen

    backend = LocalBackend(blocksize_override=4096)
    payload = bytes(range(256)) * (MICRO_PAYLOAD_BYTES // 256)
    path = f"{tmp_dir}/roundtrip.sion"

    def write_task(comm):
        f = paropen(
            path, "w", comm, chunksize=MICRO_CHUNK, nfiles=2, backend=backend
        )
        f.fwrite(payload)
        f.parclose()

    def read_task(comm):
        f = paropen(path, "r", comm, backend=backend)
        data = f.read_all()
        f.parclose()
        return len(data)

    t0 = time.perf_counter()
    run_spmd(MICRO_NTASKS, write_task)
    write_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    lengths = run_spmd(MICRO_NTASKS, read_task)
    read_s = time.perf_counter() - t0
    if lengths != [len(payload)] * MICRO_NTASKS:
        raise AssertionError("roundtrip returned wrong payload lengths")
    return {"write_s": write_s, "read_s": read_s}


@scenario(
    "micro/paropen-roundtrip",
    suite="full",
    tags=("micro", "wallclock"),
)
def micro_paropen(ctx) -> ScenarioOutput:
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        times = micro_paropen_roundtrip(tmp)
    bytes_total = MICRO_NTASKS * MICRO_PAYLOAD_BYTES
    metrics = {
        "write_wall_s": Metric(times["write_s"], better="info"),
        "read_wall_s": Metric(times["read_s"], better="info"),
        "write_mb_s": Metric(
            bytes_total / times["write_s"] / 1e6, "MB/s", "info"
        ),
    }
    text = (
        f"{MICRO_NTASKS} tasks x {MICRO_PAYLOAD_BYTES // KiB} KiB, 2 physical "
        f"files: write {times['write_s'] * 1e3:.1f} ms, "
        f"read {times['read_s'] * 1e3:.1f} ms"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=times)


def build_metablock(ntasks: int = 4096):
    """A populated metablock 1 — built outside any timed region."""
    from repro.sion.format import Metablock1

    return Metablock1(
        fsblksize=2 << 20,
        ntasks_local=ntasks,
        nfiles=1,
        filenum=0,
        ntasks_global=ntasks,
        start_of_data=2 << 20,
        metablock2_offset=0,
        globalranks=list(range(ntasks)),
        chunksizes=[1 << 20] * ntasks,
    )


def metablock_roundtrip(mb1):
    """Encode+decode of one metablock 1 (the open/close hot path)."""
    import io

    from repro.sion.format import Metablock1

    raw = mb1.encode()
    return Metablock1.decode_from(io.BytesIO(raw))


@scenario(
    "micro/metablock-roundtrip",
    suite="full",
    tags=("micro", "wallclock"),
    params={"ntasks": 4096, "rounds": 5},
)
def micro_metablock(ctx) -> ScenarioOutput:
    ntasks, rounds = ctx.params["ntasks"], ctx.params["rounds"]
    mb1 = build_metablock(ntasks)
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = metablock_roundtrip(mb1)
        best = min(best, time.perf_counter() - t0)
    if out.ntasks_local != ntasks:
        raise AssertionError("metablock roundtrip corrupted the task count")
    metrics = {"best_roundtrip_s": Metric(best, better="info")}
    text = f"{ntasks}-task metablock encode+decode: best of {rounds} = {best * 1e3:.2f} ms"
    return ScenarioOutput(metrics=metrics, text=text, raw=best)


# --------------------------------------------------------------------------
# core-io — copy/backend-call counts of the zero-copy vectored data plane
# (registered on import, like everything above) — plus the scale suite's
# control-plane scenarios (4k-256k tasks on the bulk SPMD engine), the
# collective suite's collector-rank aggregation scenarios (4k-64k tasks),
# and the serve suite's read-gateway session-load scenarios.

import repro.bench.collective  # noqa: E402,F401
import repro.bench.core_io  # noqa: E402,F401
import repro.bench.repartition  # noqa: E402,F401
import repro.bench.resilience  # noqa: E402,F401
import repro.bench.scale  # noqa: E402,F401
import repro.bench.serve  # noqa: E402,F401
