"""``collective`` suite: collector-rank aggregation at paper-scale counts.

The data-plane claim of ISSUE 4: with ``paropen(..., collectsize=K)`` the
number of *physical* data calls scales with the number of collectors, not
the number of tasks, while the files stay byte-identical to direct mode.
These scenarios drive the real library over the simulated store with a
:class:`~repro.backends.instrument.CountingBackend` and assert the call
counts from first principles (like the ``scale`` suite pins its on-disk
geometry), so the committed baseline only has to gate wall clock:

* ``collective/write-wave[ntasks=N]`` — N tasks funnel one payload each
  through ``NCOLLECTORS`` collectors; exactly one ``scatter_write`` per
  collector must reach the store (plus the three metadata writes per
  physical file).
* ``collective/read-wave[ntasks=N]`` — the read-side mirror: one
  prefetching ``gather_read`` per collector, every task's payload
  round-tripped.
* ``collective/direct-vs-collective`` — the same workload in both modes:
  physical files must be byte-identical, and the collective mode's write
  calls must not scale with the task count (direct mode's do).
* ``collective/nfiles-collectors-tradeoff`` — the paper's Fig. 4
  methodology applied to the new axis: sweep physical files x collectors
  at a fixed task count and record the per-file call pressure, the
  knob balance the paper studies for ``nfiles`` alone.

All SION backend interactions — collective mode's waves *and* direct
mode's replay-guarded handles — are ``exec_once``-guarded, so every
count here is deterministic under the bulk engine's memoized replay and
pinned exactly from first principles.  The 4k/16k points carry the
``ci-grid`` tag and gate on every push; 64k runs in the nightly
workflow.
"""

from __future__ import annotations

import time

from repro.backends.instrument import CountingBackend
from repro.backends.simfs_backend import SimBackend
from repro.bench.registry import scenario
from repro.bench.results import Metric, ScenarioOutput
from repro.bench.scale import expected_geometry
from repro.fs.simfs import SimFS
from repro.sion.mapping import physical_path

KiB = 1024

#: Task counts of the full grid; the first two form the CI grid.
COLLECTIVE_TASK_COUNTS = (4096, 16384, 65536)
CI_TASK_COUNTS = frozenset((4096, 16384))

#: Collectors per scenario — constant while the task count grows, which
#: is the whole point: physical-writer pressure stays flat.
NCOLLECTORS = 64

FSBLK = 4 * KiB
CHUNKSIZE = 4 * KiB
PAYLOAD = 64

#: Backend write calls per physical file that are metadata, not data:
#: the metablock-1 create, the metablock-2 append, and the metablock-1
#: offset patch.
METADATA_WRITES_PER_FILE = 3


def _tags(family: str, ntasks: int) -> tuple[str, ...]:
    tags = ["collective", "data-plane", family]
    if ntasks in CI_TASK_COUNTS:
        tags.append("ci-grid")
    return tuple(tags)


def _backend() -> CountingBackend:
    return CountingBackend(SimBackend(SimFS(blocksize_override=FSBLK)))


def _payload(rank: int, nbytes: int) -> bytes:
    return bytes((rank * 31 + i) % 256 for i in range(nbytes))


def _write_cycle(backend, ntasks, engine, *, nfiles=1, collectors=None,
                 chunksize=CHUNKSIZE, payload_bytes=PAYLOAD, path="/coll.sion"):
    """One collective open/write/close cycle; returns (wall_s, out[0])."""
    from repro.simmpi import run_spmd
    from repro.sion import paropen

    def program(comm):
        f = paropen(
            path, "w", comm, chunksize=chunksize, fsblksize=FSBLK,
            nfiles=nfiles, backend=backend, collectors=collectors,
        )
        f.fwrite(_payload(comm.rank, payload_bytes))
        f.parclose()
        return (f.layout.start_of_data, f.mb1.metablock2_offset)

    t0 = time.perf_counter()
    out = run_spmd(ntasks, program, engine=engine)
    return time.perf_counter() - t0, out[0]


def _read_cycle(backend, ntasks, engine, *, collectors=None,
                payload_bytes=PAYLOAD, path="/coll.sion"):
    """Collective read-back; asserts corner ranks round-trip exactly."""
    from repro.simmpi import run_spmd
    from repro.sion import paropen

    check = {0, ntasks // 2, ntasks - 1}

    def program(comm):
        f = paropen(path, "r", comm, backend=backend, collectors=collectors)
        data = f.read_all()
        f.parclose()
        return data if comm.rank in check else len(data)

    t0 = time.perf_counter()
    out = run_spmd(ntasks, program, engine=engine)
    wall = time.perf_counter() - t0
    for rank in check:
        if out[rank] != _payload(rank, payload_bytes):
            raise AssertionError(f"rank {rank} round-tripped corrupted bytes")
    return wall


def _pin(actual: int, expected: int, what: str) -> None:
    """First-principles count assertion (the gate never sees drift)."""
    if actual != expected:
        raise AssertionError(f"{what}: expected exactly {expected}, got {actual}")


# --------------------------------------------------------------------------
# Write side: one scatter_write per collector per wave.


def _write_wave(ctx) -> ScenarioOutput:
    from repro.sion import resolve_collectsize

    p = ctx.params
    ntasks, ncoll = p["ntasks"], p["collectors"]
    collectsize = resolve_collectsize(None, ncoll, ntasks)
    backend = _backend()
    wall, geom = _write_cycle(
        backend, ntasks, p["engine"], nfiles=p["nfiles"], collectors=ncoll
    )
    if geom != expected_geometry(ntasks, CHUNKSIZE, FSBLK):
        raise AssertionError(f"on-disk geometry drifted: {geom}")
    snap = backend.snapshot()
    calls = backend.stats.calls
    _pin(calls.get("scatter_write", 0), ncoll, "wave scatter_writes")
    _pin(
        snap["data_write_calls"],
        ncoll + METADATA_WRITES_PER_FILE * p["nfiles"],
        "total backend write calls",
    )
    # One exec_once-guarded handle per collector plus the per-file
    # metablock-1 create.
    _pin(snap["opens"], ncoll + p["nfiles"], "backend opens")
    metrics = {
        "open_write_close_wall_s": Metric(wall, "s", "lower"),
        "tasks_per_s": Metric(ntasks / wall, "tasks/s", "info"),
        "wave_write_calls": Metric(float(calls["scatter_write"]), "calls", "info"),
        "data_write_calls": Metric(float(snap["data_write_calls"]), "calls", "info"),
        "tasks_per_collector": Metric(float(collectsize), "tasks", "info"),
    }
    text = (
        f"{ntasks} tasks -> {ncoll} collectors (collectsize {collectsize}): "
        f"{snap['data_write_calls']} backend write calls "
        f"({calls['scatter_write']} waves + "
        f"{METADATA_WRITES_PER_FILE * p['nfiles']} metadata) in {wall:.2f} s"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=snap)


# --------------------------------------------------------------------------
# Read side: one prefetching gather_read per collector.


def _read_wave(ctx) -> ScenarioOutput:
    p = ctx.params
    ntasks, ncoll = p["ntasks"], p["collectors"]
    backend = _backend()
    _write_cycle(backend, ntasks, p["engine"], collectors=ncoll)
    before = backend.snapshot()
    wall = _read_cycle(backend, ntasks, p["engine"], collectors=ncoll)
    snap = backend.snapshot()
    _pin(
        backend.stats.calls.get("gather_read", 0), ncoll, "prefetch gather_reads"
    )
    read_calls = snap["data_read_calls"] - before["data_read_calls"]
    # Metadata costs 4 streaming reads for the world probe plus 8 per
    # physical file (metablock 1 + metablock 2 decode); everything else
    # is exactly one prefetch wave per collector, one data fragment per
    # task (each task wrote a single block).
    meta_reads = 8 * 1 + 4
    _pin(read_calls, ncoll + meta_reads, "total backend read calls")
    _pin(
        snap["fragments_read"] - before["fragments_read"],
        ntasks + meta_reads,
        "prefetched fragments",
    )
    metrics = {
        "read_wall_s": Metric(wall, "s", "lower"),
        "tasks_per_s": Metric(ntasks / wall, "tasks/s", "info"),
        "wave_read_calls": Metric(float(ncoll), "calls", "info"),
        "data_read_calls": Metric(float(read_calls), "calls", "info"),
    }
    text = (
        f"{ntasks} tasks read back through {ncoll} collectors: "
        f"{read_calls} backend read calls ({ncoll} prefetch waves) "
        f"in {wall:.2f} s"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=snap)


# --------------------------------------------------------------------------
# Equivalence: collective mode must be invisible in the bytes.


def _direct_vs_collective(ctx) -> ScenarioOutput:
    p = ctx.params
    ntasks, ncoll, nfiles = p["ntasks"], p["collectors"], p["nfiles"]
    direct = _backend()
    _write_cycle(direct, ntasks, p["engine"], nfiles=nfiles)
    coll = _backend()
    _write_cycle(coll, ntasks, p["engine"], nfiles=nfiles, collectors=ncoll)
    for fn in range(nfiles):
        path = physical_path("/coll.sion", fn)
        if direct.file_size(path) != coll.file_size(path):
            raise AssertionError(f"file {fn}: sizes differ between modes")
        a = direct.inner.open(path, "rb")
        b = coll.inner.open(path, "rb")
        try:
            same = a.read(direct.file_size(path)) == b.read(coll.file_size(path))
        finally:
            a.close()
            b.close()
        if not same:
            raise AssertionError(f"file {fn}: bytes differ between modes")
    dsnap, csnap = direct.snapshot(), coll.snapshot()
    meta = METADATA_WRITES_PER_FILE * nfiles
    _pin(csnap["data_write_calls"], ncoll + meta, "collective write calls")
    # Direct-mode handles are replay-guarded, so the counts are exact on
    # both engines: one physical call per task plus the metadata writes.
    _pin(dsnap["data_write_calls"], ntasks + meta, "direct write calls")
    ratio = dsnap["data_write_calls"] / csnap["data_write_calls"]
    metrics = {
        "collective_write_calls": Metric(
            float(csnap["data_write_calls"]), "calls", "info"
        ),
        "direct_write_calls": Metric(
            float(dsnap["data_write_calls"]), "calls", "info"
        ),
        "write_call_reduction": Metric(ratio, "x", "info"),
        "bytes_written_delta": Metric(
            float(csnap["bytes_written"] - dsnap["bytes_written"]), "bytes", "info"
        ),
    }
    text = (
        f"{ntasks} tasks over {nfiles} file(s): byte-identical multifiles; "
        f"write calls {dsnap['data_write_calls']} (direct) -> "
        f"{csnap['data_write_calls']} (collective, {ncoll} collectors), "
        f"{ratio:.0f}x fewer"
    )
    return ScenarioOutput(metrics=metrics, text=text, raw=(dsnap, csnap))


# --------------------------------------------------------------------------
# The nfiles x collectors tradeoff (Fig. 4 methodology on the new axis).


def _nfiles_collectors_tradeoff(ctx) -> ScenarioOutput:
    p = ctx.params
    ntasks = p["ntasks"]
    metrics: dict[str, Metric] = {}
    lines = ["nfiles  collectors  write calls  calls/file   wall"]
    for nfiles in p["nfiles_sweep"]:
        for ncoll in p["collectors_sweep"]:
            backend = _backend()
            wall, _ = _write_cycle(
                backend, ntasks, p["engine"], nfiles=nfiles, collectors=ncoll
            )
            snap = backend.snapshot()
            _pin(
                snap["data_write_calls"],
                ncoll + METADATA_WRITES_PER_FILE * nfiles,
                f"write calls at nfiles={nfiles}, collectors={ncoll}",
            )
            key = f"[nfiles={nfiles},collectors={ncoll}]"
            metrics[f"write_calls{key}"] = Metric(
                float(snap["data_write_calls"]), "calls", "info"
            )
            metrics[f"calls_per_file{key}"] = Metric(
                snap["data_write_calls"] / nfiles, "calls", "info"
            )
            metrics[f"wall_s{key}"] = Metric(wall, "s", "info")
            lines.append(
                f"{nfiles:>6}  {ncoll:>10}  {snap['data_write_calls']:>11}  "
                f"{snap['data_write_calls'] / nfiles:>10.1f}  {wall:>5.2f} s"
            )
    text = (
        f"{ntasks} tasks, nfiles x collectors sweep "
        "(physical pressure per file vs. aggregation degree):\n"
        + "\n".join(lines)
    )
    return ScenarioOutput(metrics=metrics, text=text)


# --------------------------------------------------------------------------
# Registration.

for _n in COLLECTIVE_TASK_COUNTS:
    scenario(
        f"collective/write-wave[ntasks={_n}]",
        suite="collective",
        tags=_tags("write-wave", _n),
        params={
            "ntasks": _n,
            "collectors": NCOLLECTORS,
            "nfiles": 1,
            "engine": "bulk",
        },
    )(_write_wave)
    scenario(
        f"collective/read-wave[ntasks={_n}]",
        suite="collective",
        tags=_tags("read-wave", _n),
        params={"ntasks": _n, "collectors": NCOLLECTORS, "engine": "bulk"},
    )(_read_wave)

scenario(
    "collective/direct-vs-collective[ntasks=4096]",
    suite="collective",
    tags=_tags("equivalence", 4096),
    params={"ntasks": 4096, "collectors": NCOLLECTORS, "nfiles": 2, "engine": "bulk"},
)(_direct_vs_collective)

scenario(
    "collective/nfiles-collectors-tradeoff[ntasks=4096]",
    suite="collective",
    tags=_tags("tradeoff", 4096),
    params={
        "ntasks": 4096,
        "nfiles_sweep": [1, 2, 4],
        "collectors_sweep": [16, 64, 256],
        "engine": "bulk",
    },
)(_nfiles_collectors_tradeoff)
