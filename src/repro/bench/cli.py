"""``python -m repro.bench`` — run, compare, and list benchmark scenarios."""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.compare import DEFAULT_THRESHOLD, compare_reports
from repro.bench.registry import SUITES, iter_scenarios
from repro.bench.results import BenchReport
from repro.bench.runner import run_suite
from repro.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark orchestration for the task-local-I/O reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a suite and write BENCH_<suite>.json")
    run_p.add_argument("--suite", choices=SUITES, default="smoke")
    run_p.add_argument(
        "--filter", default=None, metavar="GLOB", help="fnmatch over scenario names"
    )
    run_p.add_argument(
        "--tag",
        action="append",
        default=[],
        help="require this tag (repeatable)",
    )
    run_p.add_argument(
        "--engine",
        default=None,
        metavar="NAME",
        help=(
            "override the SPMD engine (threads|bulk|proc, aliases accepted) "
            "for every selected scenario that has an 'engine' parameter; "
            "the report records the effective value"
        ),
    )
    run_p.add_argument(
        "-o",
        "--output",
        default=None,
        help="result file path (default: BENCH_<suite>.json)",
    )
    run_p.add_argument(
        "-q", "--quiet", action="store_true", help="suppress per-scenario progress"
    )

    cmp_p = sub.add_parser(
        "compare", help="gate a candidate result file against a baseline"
    )
    cmp_p.add_argument("candidate", help="fresh BENCH_<suite>.json")
    cmp_p.add_argument("baseline", help="committed baseline JSON")
    cmp_p.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"max tolerated relative regression (default {DEFAULT_THRESHOLD})",
    )
    cmp_p.add_argument(
        "--baseline-only",
        action="store_true",
        help=(
            "restrict the comparison to scenarios/metrics present in the "
            "baseline (candidate-only entries are dropped, not listed as "
            "'new'); use when gating one run against a focused baseline"
        ),
    )
    cmp_p.add_argument(
        "--json", action="store_true", help="emit the deltas as JSON instead of text"
    )

    list_p = sub.add_parser("list", help="list registered scenarios")
    list_p.add_argument("--suite", choices=SUITES, default=None)
    list_p.add_argument("--filter", default=None, metavar="GLOB")
    list_p.add_argument("--tag", action="append", default=[])
    list_p.add_argument("--json", action="store_true")
    return parser


def _progress(msg: str) -> None:
    print(msg, file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    progress = None if args.quiet else _progress
    overrides = None
    if args.engine is not None:
        from repro.simmpi import normalize_engine

        overrides = {"engine": normalize_engine(args.engine)}
    report = run_suite(
        suite=args.suite,
        pattern=args.filter,
        tags=tuple(args.tag),
        progress=progress,
        param_overrides=overrides,
    )
    out = args.output or f"BENCH_{args.suite}.json"
    path = report.save(out)
    failed = report.failed
    print(
        f"wrote {path} ({len(report.scenarios)} scenarios, "
        f"{len(failed)} failed, git {report.git_sha[:12]})"
    )
    for res in failed:
        print(f"FAILED {res.name}:\n{res.error}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    candidate = BenchReport.load(args.candidate)
    baseline = BenchReport.load(args.baseline)
    result = compare_reports(
        candidate,
        baseline,
        threshold=args.threshold,
        baseline_only=args.baseline_only,
    )
    if args.json:
        print(
            json.dumps(
                {
                    "passed": result.passed,
                    "threshold": result.threshold,
                    "counts": result.counts(),
                    "failures": [d.describe() for d in result.failures],
                },
                indent=2,
            )
        )
    else:
        print(result.format_report())
    return 0 if result.passed else 1


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        {
            "name": sc.name,
            "suite": sc.suite,
            "tags": list(sc.tags),
            "profile": sc.profile,
        }
        for sc in iter_scenarios(
            suite=args.suite, tags=tuple(args.tag), pattern=args.filter
        )
    ]
    if not rows:
        print("[]" if args.json else "no scenarios match")
        return 1
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    width = max(len(r["name"]) for r in rows)
    for r in rows:
        tags = ",".join(r["tags"])
        print(f"{r['name']:<{width}}  suite={r['suite']:<5}  {tags}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        return _cmd_list(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
