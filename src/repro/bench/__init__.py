"""Benchmark orchestration: scenario registry, runner, results, gating.

The figure/table benchmarks under ``benchmarks/`` measure *deterministic*
simulated costs (virtual seconds, modelled bandwidths).  This package
turns them into a checkable contract:

``repro.bench.registry``
    ``@scenario`` decorator, parameter grids, suites and tags.
``repro.bench.scenarios``
    The built-in scenario definitions wrapping ``repro.workloads``.
``repro.bench.runner`` / ``repro.bench.results``
    Execute a suite and persist a versioned, machine-readable
    ``BENCH_<suite>.json`` (schema version, git SHA, environment
    fingerprint, per-scenario metrics).
``repro.bench.compare``
    Diff a fresh run against a committed baseline and fail on
    regressions beyond a threshold — deterministic metrics make tight
    thresholds practical.
``repro.bench.cli``
    ``python -m repro.bench run|compare|list``.
"""

from repro.bench.compare import ComparisonResult, MetricDelta, compare_reports
from repro.bench.registry import (
    Registry,
    Scenario,
    ScenarioContext,
    get_scenario,
    iter_scenarios,
    scenario,
)
from repro.bench.results import (
    BenchReport,
    Metric,
    ScenarioOutput,
    ScenarioResult,
    environment_fingerprint,
    git_sha,
    series_metrics,
    utc_now_iso,
)
from repro.bench.runner import run_suite
from repro.bench.schema import SCHEMA_VERSION, validate_report

__all__ = [
    "SCHEMA_VERSION",
    "BenchReport",
    "ComparisonResult",
    "Metric",
    "MetricDelta",
    "Registry",
    "Scenario",
    "ScenarioContext",
    "ScenarioOutput",
    "ScenarioResult",
    "compare_reports",
    "environment_fingerprint",
    "get_scenario",
    "git_sha",
    "iter_scenarios",
    "run_suite",
    "scenario",
    "series_metrics",
    "utc_now_iso",
    "validate_report",
]
