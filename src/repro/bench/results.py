"""Result containers and the ``BENCH_<suite>.json`` file format."""

from __future__ import annotations

import datetime
import json
import pathlib
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.analysis.results import Series
from repro.bench.schema import SCHEMA_VERSION, validate_report
from repro.errors import ReproError


@dataclass(frozen=True)
class Metric:
    """One measured quantity of a scenario.

    ``better`` states which direction is an improvement so the comparator
    can gate without metric-specific knowledge; ``info`` metrics (wall
    clock, derived annotations) are reported but never gated.
    """

    value: float
    unit: str = "s"
    better: str = "lower"

    def to_dict(self) -> dict[str, Any]:
        return {"value": self.value, "unit": self.unit, "better": self.better}

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> Metric:
        return cls(value=float(doc["value"]), unit=doc["unit"], better=doc["better"])


def coerce_metrics(metrics: Mapping[str, Metric | float]) -> dict[str, Metric]:
    """Accept plain floats (treated as lower-is-better seconds)."""
    out: dict[str, Metric] = {}
    for name, m in metrics.items():
        out[name] = m if isinstance(m, Metric) else Metric(float(m))
    return out


@dataclass
class ScenarioOutput:
    """What one scenario function returns.

    ``metrics`` feed the JSON report and the regression gate; ``text`` is
    the human-readable table/figure (what ``emit()`` persists); ``raw``
    carries the workload's native result objects for the pytest wrappers'
    assertions — it never reaches the JSON file.
    """

    metrics: dict[str, Metric] = field(default_factory=dict)
    text: str = ""
    raw: Any = None

    def __post_init__(self) -> None:
        self.metrics = coerce_metrics(self.metrics)


def series_metrics(
    series: Series,
    unit: str = "s",
    better: str = "lower",
    overrides: Mapping[str, tuple[str, str]] | None = None,
) -> dict[str, Metric]:
    """Flatten a :class:`Series` into per-point metrics.

    Each curve point becomes ``"<curve>[<x_label>=<x>]"`` so a committed
    baseline gates the whole curve, not just its endpoints.  ``overrides``
    maps a curve label to its own ``(unit, better)`` for series that mix
    directions (e.g. bandwidths plus a derived penalty factor).
    """
    out: dict[str, Metric] = {}
    for label, ys in series.curves.items():
        curve_unit, curve_better = (overrides or {}).get(label, (unit, better))
        for x, y in zip(series.xs, ys):
            out[f"{label}[{series.x_label}={_format_x(x)}]"] = Metric(
                y, unit=curve_unit, better=curve_better
            )
    return out


def _format_x(x: float) -> str:
    """Full-precision x for metric keys.

    ``:g`` rounds to 6 significant digits, which mangles large task counts
    (1048576 -> '1.04858e+06') and would silently merge distinct sweep
    points that round to the same string.
    """
    return str(int(x)) if float(x).is_integer() else repr(float(x))


@dataclass
class ScenarioResult:
    """One scenario's entry in a report."""

    name: str
    suite: str
    tags: tuple[str, ...]
    params: dict[str, Any]
    metrics: dict[str, Metric]
    wall_s: float
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "suite": self.suite,
            "tags": list(self.tags),
            "params": dict(self.params),
            "metrics": {k: m.to_dict() for k, m in self.metrics.items()},
            "wall_s": self.wall_s,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, name: str, doc: Mapping[str, Any]) -> ScenarioResult:
        return cls(
            name=name,
            suite=doc["suite"],
            tags=tuple(doc["tags"]),
            params=dict(doc["params"]),
            metrics={k: Metric.from_dict(m) for k, m in doc["metrics"].items()},
            wall_s=float(doc["wall_s"]),
            error=doc["error"],
        )


def git_sha(cwd: str | pathlib.Path | None = None) -> str:
    """HEAD commit for provenance stamps (``"unknown"`` outside a repo).

    With no explicit ``cwd``, tries the process CWD first (the checkout
    the user is actually benchmarking) and falls back to the package
    location (so an editable install still resolves when invoked from a
    directory outside any repo).  CWD comes first because a non-editable
    install may physically live inside an unrelated repo (a venv under
    some project tree), whose HEAD would be actively wrong provenance.
    """
    if cwd is not None:
        candidates = [cwd]
    else:
        candidates = [pathlib.Path.cwd(), pathlib.Path(__file__).resolve().parent]
    for where in candidates:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=where,
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            continue
        if out.returncode == 0:
            return out.stdout.strip()
    return "unknown"


def utc_now_iso() -> str:
    """Current UTC time, second resolution, ISO-8601 with offset."""
    return datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds")


def environment_fingerprint() -> dict[str, str]:
    """Enough about the host to interpret (non-)reproducibility."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy ships with the repo image
        numpy_version = "absent"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy_version,
        "argv0": pathlib.Path(sys.argv[0]).name if sys.argv else "",
    }


@dataclass
class BenchReport:
    """A full suite run: metadata plus every scenario's result."""

    suite: str
    scenarios: dict[str, ScenarioResult] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION
    created: str = field(default_factory=utc_now_iso)
    git_sha: str = field(default_factory=git_sha)
    environment: dict[str, str] = field(default_factory=environment_fingerprint)

    def add(self, result: ScenarioResult) -> None:
        if result.name in self.scenarios:
            raise ReproError(f"duplicate scenario result {result.name!r}")
        self.scenarios[result.name] = result

    @property
    def failed(self) -> list[ScenarioResult]:
        return [r for r in self.scenarios.values() if r.error is not None]

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "suite": self.suite,
            "created": self.created,
            "git_sha": self.git_sha,
            "environment": dict(self.environment),
            "scenarios": {
                name: r.to_dict() for name, r in sorted(self.scenarios.items())
            },
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> BenchReport:
        problems = validate_report(doc)
        if problems:
            raise ReproError(
                "invalid bench report: " + "; ".join(problems[:5])
                + (f" (+{len(problems) - 5} more)" if len(problems) > 5 else "")
            )
        return cls(
            suite=doc["suite"],
            schema_version=doc["schema_version"],
            created=doc["created"],
            git_sha=doc["git_sha"],
            environment=dict(doc["environment"]),
            scenarios={
                name: ScenarioResult.from_dict(name, entry)
                for name, entry in doc["scenarios"].items()
            },
        )

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        doc = self.to_dict()
        problems = validate_report(doc)
        if problems:
            raise ReproError(
                "refusing to save invalid bench report: " + "; ".join(problems[:5])
            )
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
        return path

    @classmethod
    def load(cls, path: str | pathlib.Path) -> BenchReport:
        path = pathlib.Path(path)
        try:
            doc = json.loads(path.read_text())
        except FileNotFoundError:
            raise ReproError(f"no such result file: {path}") from None
        except json.JSONDecodeError as exc:
            raise ReproError(f"{path} is not valid JSON: {exc}") from None
        return cls.from_dict(doc)
