#!/usr/bin/env python
"""Drive the simulated Jugene and Jaguar machines interactively.

Two demonstrations:

1. the full SION stack running unmodified on the simulated parallel file
   system (virtual clock, sparse terabyte files in megabytes of RAM);
2. a miniature of the paper's Fig. 3 experiment — why creating one file
   per task stops scaling — rendered as a table and an ASCII chart.

Run:  python examples/simulated_machines.py
"""

from repro import simmpi, sion
from repro.analysis.plots import ascii_chart
from repro.analysis.results import Series, format_table
from repro.backends.simfs_backend import SimBackend
from repro.fs.simfs import SimFS
from repro.fs.systems import jugene
from repro.workloads.filecreate import run_fig3


def main():
    # --- 1. The library on the simulated machine --------------------------
    profile = jugene()
    fs = SimFS(profile=profile)
    fs.mkdir("/scratch")
    backend = SimBackend(fs)

    def writer(comm):
        f = sion.paropen("/scratch/big.sion", "w", comm,
                         chunksize=16 * (1 << 20), backend=backend)
        # Sparse virtual write: 16 MiB of zeros per task, no RAM cost.
        f._raw.seek(f.layout.chunk_start(f.local_rank, 0))
        f._stream.fwrite(b"header")  # a few real bytes
        f.parclose()

    simmpi.run_spmd(32, writer)
    st = fs.stat("/scratch/big.sion")
    print("simulated Jugene scratch file system:")
    print(f"  multifile logical size: {st.st_size / 1e6:.1f} MB "
          f"(allocated in RAM: {st.allocated_bytes / 1e3:.1f} KB)")
    print(f"  virtual clock after the run: {fs.clock * 1e3:.3f} ms")
    print(f"  metadata ops: { {k: v for k, v in fs.op_counts.items() if 'bytes' not in k} }\n")

    # --- 2. Fig. 3a in miniature ------------------------------------------
    counts = [1024, 4096, 16384, 65536]
    rows = run_fig3(profile, counts)
    s = Series("fig3a", "#tasks", "seconds", xs=[r.ntasks for r in rows])
    s.add_curve("create files", [r.create_files_s for r in rows])
    s.add_curve("open existing", [r.open_existing_s for r in rows])
    s.add_curve("SION create", [r.sion_create_s for r in rows])
    print("Fig. 3a (simulated Jugene): parallel file creation")
    print(format_table(s))
    print()
    print(ascii_chart(s, log_x=True, log_y=True, width=56, height=14))
    last = rows[-1]
    print(f"\nat 64K tasks, the SION multifile is created "
          f"{last.create_speedup:.0f}x faster than 64K task-local files")


if __name__ == "__main__":
    main()
