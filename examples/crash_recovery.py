#!/usr/bin/env python
"""Recovering a multifile after a crash (paper §6's robustness roadmap).

A writer opens the multifile with ``shadow=True`` (32-byte per-chunk
recovery headers), writes checkpoint data, flushes the shadow metadata —
and then "crashes" before the collective close, so metablock 2 is never
written and the file is unreadable.  ``sionrecover`` reconstructs it.

Run:  python examples/crash_recovery.py
"""

import os
import tempfile

from repro import simmpi, sion
from repro.errors import SionFormatError

NTASKS = 8


def crashing_writer(comm, path):
    f = sion.paropen(path, "w", comm, chunksize=32 * 1024, shadow=True)
    payload = f"rank {comm.rank} survived data ".encode() * 2000
    f.fwrite(payload)
    f.flush_shadow()  # checkpoint the recovery metadata
    f._raw.close()  # simulate the process dying: NO parclose
    return len(payload)


def main():
    workdir = tempfile.mkdtemp(prefix="sion-crash-")
    path = os.path.join(workdir, "doomed.sion")

    sizes = simmpi.run_spmd(NTASKS, crashing_writer, path)
    print(f"writer 'crashed' after {sum(sizes)} bytes, before the collective close")

    # The multifile is now unreadable: metablock 2 was never written.
    try:
        sion.open(path, "r")
    except SionFormatError as exc:
        print(f"as expected, reading fails: {exc}")

    # Recover from the shadow headers.
    report = sion.recover_multifile(path)
    print(f"\nrecovery: {report.files_recovered} file(s), "
          f"{report.tasks_recovered} task streams, {report.bytes_recovered} bytes")
    for line in report.details:
        print(f"  {line}")

    # Everything is readable again.
    with sion.open(path, "r") as sf:
        for rank in range(NTASKS):
            data = sf.read_task(rank)
            assert data == f"rank {rank} survived data ".encode() * 2000
    print(f"\nall {NTASKS} task streams verified after recovery")


if __name__ == "__main__":
    main()
