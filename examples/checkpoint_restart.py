#!/usr/bin/env python
"""MP2C-style particle simulation with checkpoint/restart (paper §5.1).

Runs the multi-particle collision dynamics mini-app on 16 SPMD tasks,
checkpoints through all three I/O methods — SIONlib, task-local files, and
the single-file-sequential baseline MP2C originally used — and compares
what lands on disk.

Run:  python examples/checkpoint_restart.py
"""

import os
import tempfile

from repro import simmpi
from repro.apps.mp2c import SimulationConfig, read_restart, run_simulation
from repro.apps.mp2c.decomposition import DomainDecomposition
from repro.apps.mp2c.particles import ParticleState, equal_states

NTASKS = 16
PARTICLES_PER_TASK = 500


def main():
    workdir = tempfile.mkdtemp(prefix="mp2c-")
    cfg = SimulationConfig(
        particles_per_task=PARTICLES_PER_TASK,
        box=(16.0, 16.0, 16.0),
        nsteps=8,
        checkpoint_every=4,
        checkpoint_path=os.path.join(workdir, "restart.sion"),
        checkpoint_method="sion",
        md_chains=2,  # a couple of bead-spring polymers per task
    )

    print(f"running MP2C mini-app: {NTASKS} tasks x {PARTICLES_PER_TASK} particles")
    results = simmpi.run_spmd(NTASKS, run_simulation, cfg)
    drift = max(r.momentum_drift for r in results)
    print(f"  grid {results[0].diagnostics['grid']}, "
          f"momentum drift {drift:.2e} (SRD conserves exactly)")
    assert drift < 1e-8

    ckpt = cfg.checkpoint_path + ".step000008"
    n_files = len(os.listdir(workdir))
    print(f"  checkpointed {NTASKS} tasks into {n_files} physical file(s): {ckpt}")

    # Restart: read back and re-migrate to owners.
    def restart(comm):
        decomp = DomainDecomposition.for_tasks(comm.size, cfg.box)
        return read_restart(comm, ckpt, "sion", decomp=decomp)

    restored = simmpi.run_spmd(NTASKS, restart)
    before = ParticleState.concatenate([r.state for r in results])
    after = ParticleState.concatenate(list(restored))
    assert equal_states(before, after)
    print(f"  restart verified: {after.n} particles bit-identical after reload\n")

    # Contrast the three checkpoint methods' file counts (the paper's point).
    from repro.apps.mp2c.checkpoint import write_restart

    for method in ("sion", "tasklocal", "singlefile"):
        subdir = tempfile.mkdtemp(prefix=f"ck-{method}-")

        def write(comm, m=method, d=subdir):
            state = ParticleState.random(
                100, cfg.box, seed=comm.rank, id_offset=comm.rank * 100
            )
            write_restart(comm, os.path.join(d, "ck"), state, method=m)

        simmpi.run_spmd(NTASKS, write)
        print(f"  method {method:<11} -> {len(os.listdir(subdir)):>3} physical file(s)")

    print("\nSIONlib keeps one file; task-local files scale with the task count —")
    print("at 64K tasks that difference is minutes of file creation (Fig. 3).")


if __name__ == "__main__":
    main()
