#!/usr/bin/env python
"""Hybrid MPI+threads tracing with per-thread multifiles (paper §6).

The paper plans hybrid support "via a separate multifile for every OpenMP
thread identifier, resulting in at most four multifiles on Jugene with its
four cores per node."  This example runs 8 SPMD ranks, each driving 4
concurrent worker threads; every (rank, thread) pair owns a logical
task-local log — 32 logical files — yet only 4 physical multifile sets
appear on disk, and each is written through the text-mode API with write
coalescing.

Run:  python examples/hybrid_tracing.py
"""

import os
import tempfile
import threading

from repro import simmpi
from repro.sion.buffering import CoalescingWriter
from repro.sion.hybrid import open_rank_thread, paropen_hybrid
from repro.sion.text import TextReader, TextWriter

NRANKS = 8
NTHREADS = 4
STEPS = 50


def worker(handle, rank, tid):
    """One 'OpenMP thread': log fine-grained progress lines."""
    stream = handle.stream(tid)
    with CoalescingWriter(stream, buffer_size=8 * 1024) as coalesced:
        text = TextWriter(coalesced)
        for step in range(STEPS):
            text.printf("rank={} thread={} step={} residual={:.6f}",
                        rank, tid, step, 1.0 / (step + 1))


def program(comm, path):
    handle = paropen_hybrid(path, "w", comm, NTHREADS, chunksize=16 * 1024)
    threads = [
        threading.Thread(target=worker, args=(handle, comm.rank, t))
        for t in range(NTHREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    handle.parclose()


def main():
    workdir = tempfile.mkdtemp(prefix="hybrid-")
    path = os.path.join(workdir, "joblog.sion")

    simmpi.run_spmd(NRANKS, program, path)

    files = sorted(os.listdir(workdir))
    print(f"{NRANKS} ranks x {NTHREADS} threads = {NRANKS * NTHREADS} logical logs")
    print(f"physical files on disk ({len(files)}): {files}\n")
    assert len(files) == NTHREADS  # "at most four multifiles"

    # Read one (rank, thread) log back through the task-local view.
    with open_rank_thread(path, rank=5, thread=2) as rf:
        lines = TextReader(rf).read_lines()
    print(f"rank 5 / thread 2 logged {len(lines)} lines; first and last:")
    print(f"  {lines[0]}")
    print(f"  {lines[-1]}")
    assert len(lines) == STEPS
    assert lines[0] == "rank=5 thread=2 step=0 residual=1.000000"


if __name__ == "__main__":
    main()
