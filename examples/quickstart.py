#!/usr/bin/env python
"""Quickstart: map 8 task-local logical files onto one physical multifile.

Mirrors the paper's Listings 1 and 2: a collective open, ANSI-style writes
guarded by ``ensure_free_space``, a collective close — then the same data
read back both in parallel and through the serial global view.

Run:  python examples/quickstart.py
"""

import os
import tempfile

from repro import simmpi, sion
from repro.utils.dump import dump_multifile, format_dump

NTASKS = 8


def parallel_write(comm, path):
    """Every task writes its own logical file into the shared multifile."""
    f = sion.paropen(path, "w", comm, chunksize=64 * 1024)  # collective
    for piece in range(4):
        data = f"task {comm.rank} / record {piece};".encode() * 100
        f.ensure_free_space(len(data))  # may advance to a fresh chunk
        f.write(data)  # plain write, like fwrite(3)
    f.parclose()  # collective


def parallel_read(comm, path):
    """Listing 2's read loop: feof + bytes_avail_in_chunk + read."""
    f = sion.paropen(path, "r", comm)
    parts = []
    while not f.feof():
        parts.append(f.read(f.bytes_avail_in_chunk()))
    f.parclose()
    return b"".join(parts)


def main():
    workdir = tempfile.mkdtemp(prefix="sion-quickstart-")
    path = os.path.join(workdir, "data.sion")

    # 1. Parallel write: 8 logical task-local files -> ONE physical file.
    simmpi.run_spmd(NTASKS, parallel_write, path)
    print(f"wrote multifile: {path}")
    print(f"directory holds {len(os.listdir(workdir))} physical file(s) "
          f"for {NTASKS} logical files\n")

    # 2. Inspect it with the dump tool.
    print(format_dump(dump_multifile(path), verbose=True), "\n")

    # 3. Parallel read-back.
    contents = simmpi.run_spmd(NTASKS, parallel_read, path)
    for rank, data in enumerate(contents):
        expected = b"".join(
            f"task {rank} / record {p};".encode() * 100 for p in range(4)
        )
        assert data == expected, f"rank {rank} read back wrong data"
    print(f"parallel read-back verified for {NTASKS} tasks")

    # 4. Serial access (what post-processing tools use).
    with sion.open(path, "r") as sf:
        loc = sf.get_locations()
        print(f"serial view: {loc.ntasks} tasks, {loc.total_bytes()} bytes total")
        assert sf.read_task(3) == contents[3]
    print("serial global view verified")


if __name__ == "__main__":
    main()
