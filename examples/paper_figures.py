#!/usr/bin/env python
"""Reproduce every table and figure of the paper in one command.

Runs the complete evaluation suite on the simulated machines and prints
the paper-style tables (plus ASCII renderings of the log-scale figures).
Equivalent to ``pytest benchmarks/ --benchmark-only`` minus the harness.

Run:  python examples/paper_figures.py          (~30 s)
"""

from repro.analysis.plots import ascii_chart
from repro.analysis.results import Series, format_table
from repro.fs.systems import jaguar, jugene
from repro.workloads.alignment import run_table1
from repro.workloads.bandwidth import run_fig4a, run_fig4b
from repro.workloads.filecreate import (
    JAGUAR_TASK_COUNTS,
    JUGENE_TASK_COUNTS,
    run_fig3,
)
from repro.workloads.mp2c_io import crossover_particles_m, run_fig6
from repro.workloads.scalasca_io import run_table2
from repro.workloads.taskbw import run_fig5a, run_fig5b


def heading(title):
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main():
    ju, ja = jugene(), jaguar()

    heading("Fig. 3 — parallel creation of task-local files vs. SION multifile")
    for name, profile, counts, nfiles in (
        ("Jugene (GPFS)", ju, JUGENE_TASK_COUNTS, 1),
        ("Jaguar (Lustre)", ja, JAGUAR_TASK_COUNTS, 16),
    ):
        rows = run_fig3(profile, counts, nfiles)
        s = Series(name, "#tasks", "seconds", xs=[r.ntasks for r in rows])
        s.add_curve("create files", [r.create_files_s for r in rows])
        s.add_curve("open existing", [r.open_existing_s for r in rows])
        s.add_curve("SION create", [r.sion_create_s for r in rows])
        print(f"\n{name}:")
        print(format_table(s))

    heading("Fig. 4 — bandwidth vs. number of physical files")
    pts = run_fig4a(ju)
    s = Series("fig4a", "#files", "MB/s", xs=[p.nfiles for p in pts])
    s.add_curve("write", [p.write_mb_s for p in pts])
    s.add_curve("read", [p.read_mb_s for p in pts])
    print("\nJugene (64K tasks, 1 TB):")
    print(format_table(s))
    res = run_fig4b(ja)
    s = Series("fig4b", "#files", "MB/s", xs=[p.nfiles for p in res.default])
    s.add_curve("write default", [p.write_mb_s for p in res.default])
    s.add_curve("write optimized", [p.write_mb_s for p in res.optimized])
    print("\nJaguar (2K tasks, 1 TB; default 4x1MB vs optimized 64x8MB striping):")
    print(format_table(s))

    heading("Table 1 — file-system block alignment (Jugene, 32K tasks, 256 GB)")
    t1 = run_table1(ju)
    print(f"\naligned (2 MB):   write {t1.aligned.write_mb_s:7.1f}  "
          f"read {t1.aligned.read_mb_s:7.1f} MB/s")
    print(f"unaligned (16 KB): write {t1.unaligned.write_mb_s:7.1f}  "
          f"read {t1.unaligned.read_mb_s:7.1f} MB/s")
    print(f"factors: {t1.write_factor:.2f}x write (paper 2.53x), "
          f"{t1.read_factor:.2f}x read (paper 1.78x)")

    heading("Fig. 5 — SION vs. task-local bandwidth over task counts")
    for name, pts in (("Jugene", run_fig5a(ju)), ("Jaguar", run_fig5b(ja))):
        s = Series(name, "#tasks", "MB/s", xs=[p.ntasks for p in pts])
        s.add_curve("SION write", [p.sion_write for p in pts])
        s.add_curve("SION read", [p.sion_read for p in pts])
        s.add_curve("task-local write", [p.tasklocal_write for p in pts])
        s.add_curve("task-local read", [p.tasklocal_read for p in pts])
        print(f"\n{name}:")
        print(format_table(s))

    heading("Fig. 6 — MP2C restart I/O on 1000 Jugene cores")
    pts = run_fig6(ju)
    s = Series("fig6", "Mio. particles", "seconds", xs=[p.particles_m for p in pts])
    s.add_curve("write, SION", [p.sion_write_s for p in pts])
    s.add_curve("read, SION", [p.sion_read_s for p in pts])
    s.add_curve("write", [p.single_write_s for p in pts])
    s.add_curve("read", [p.single_read_s for p in pts])
    print(format_table(s))
    print()
    print(ascii_chart(s, log_x=True, log_y=True, width=56, height=14))
    by_m = {p.particles_m: p for p in pts}
    print(f"\ncrossover ~{crossover_particles_m(pts)} M particles; "
          f"33 M speedup: {by_m[33.0].write_speedup:.0f}x (paper: 1-2 orders)")

    heading("Table 2 — Scalasca trace measurement activation (32K tasks)")
    t2 = run_table2(ju)
    for row in (t2.tasklocal, t2.sion):
        print(f"{row.io_type:<10}  activation {row.activation_s:7.1f} s   "
              f"write BW {row.write_bw_mb_s:6.0f} MB/s")
    print(f"speedup: {t2.activation_speedup:.1f}x (paper: 13.1x)")


if __name__ == "__main__":
    main()
