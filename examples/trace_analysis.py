#!/usr/bin/env python
"""Scalasca-style tracing and wait-state analysis (paper §5.2, Fig. 7).

An SMG2000-like synthetic workload with an injected load imbalance is
traced on 16 SPMD tasks; each task's events go to its logical task-local
trace inside a SION multifile (zlib-compressed, chunk size = buffer
capacity — the exact configuration the paper describes).  The parallel
analyzer then loads the traces postmortem and quantifies the Late Sender
wait states the imbalance caused.

Run:  python examples/trace_analysis.py
"""

import os
import tempfile

from repro import simmpi
from repro.apps.scalasca.analyzer import analyze_barriers, analyze_traces
from repro.apps.scalasca.profile import profile_traces
from repro.apps.scalasca.smg2000 import (
    REGION_RELAX,
    SMG2000Config,
    generate_smg2000_trace,
    is_imbalanced,
)
from repro.apps.scalasca.tracer import TraceExperiment

NTASKS = 16


def trace_and_analyze(comm, path, cfg):
    # Measurement activation: creates the trace files (Table 2's phase).
    exp = TraceExperiment(comm, path, method="sion", nfiles=2)
    exp.activate()

    # "Application run": the instrumented solver emits events.
    generate_smg2000_trace(comm.rank, cfg, exp.tracer)

    # Measurement finalization: compress + write the collection buffer.
    stats = exp.finalize()

    # Postmortem parallel analysis over the same task count.
    result = analyze_traces(comm, path, method="sion")
    barriers = analyze_barriers(comm, path, method="sion")
    profile = profile_traces(comm, path, method="sion")
    return stats, result, barriers, profile


def main():
    workdir = tempfile.mkdtemp(prefix="scalasca-")
    path = os.path.join(workdir, "traces.sion")
    cfg = SMG2000Config(ntasks=NTASKS, iterations=6, levels=3,
                        imbalance=0.8, imbalanced_fraction=0.25, seed=11)

    out = simmpi.run_spmd(NTASKS, trace_and_analyze, path, cfg)
    stats = [s for s, _, _, _ in out]
    result = out[0][1]
    barriers = out[0][2]
    profile = out[0][3]

    raw = sum(s.uncompressed_bytes for s in stats)
    disk = sum(s.written_bytes for s in stats)
    print(f"traced {NTASKS} tasks: {raw} bytes of events, "
          f"{disk} on disk (zlib, {disk / raw:.0%})")
    print(f"physical files in {workdir}: {sorted(os.listdir(workdir))}\n")

    print("late-sender analysis:")
    print(f"  wait states found:   {result.n_wait_states}")
    print(f"  total waiting time:  {result.total_wait_time * 1e3:.3f} ms")
    print(f"  worst single wait:   {result.worst_states[0].wait_time * 1e3:.3f} ms")

    slow = sorted({w.sender for w in result.worst_states})
    print(f"  blamed senders:      ranks {slow}")
    truly_slow = [r for r in range(NTASKS) if is_imbalanced(r, cfg)]
    print(f"  injected slow ranks: {truly_slow}")
    assert set(slow) <= set(truly_slow), "analysis blamed an innocent rank"
    print("  -> the late-sender blame matches the injected imbalance exactly")

    print("\nwait-at-barrier analysis:")
    print(f"  barrier instances:   {barriers.n_instances}")
    print(f"  total barrier wait:  {barriers.total_wait_time * 1e3:.3f} ms")
    if barriers.total_wait_time < 1e-9:
        print("  -> near zero: the halo exchanges already absorbed the "
              "imbalance before each barrier (every rank neighbours a slow "
              "one) — the waiting shows up as Late Sender instead")

    relax = profile.regions[REGION_RELAX]
    print("\nregion profile (RELAX sweep):")
    print(f"  exclusive time: min {relax.min_exclusive * 1e3:.2f} ms  "
          f"max {relax.max_exclusive * 1e3:.2f} ms  "
          f"imbalance {relax.imbalance:.2f}x")
    worst = profile.most_imbalanced()
    assert worst is not None and worst.region == REGION_RELAX
    print("  -> the profile pinpoints the RELAX sweep as the imbalanced region")


if __name__ == "__main__":
    main()
