"""Table 2 — Scalasca trace-measurement activation time and write bandwidth.

Paper: 32K-core SMG2000 run, 1470 GB of traces through 16 physical files;
activation 369.1 s (task-local) vs 28.1 s (SIONlib) — 13.1x — with write
bandwidth slightly improved (2153 -> 2194 MB/s).
"""

from repro.workloads.scalasca_io import run_table2

from conftest import emit, once


def test_table2_scalasca_activation(benchmark, jugene_profile):
    res = once(benchmark, run_table2, jugene_profile)
    rows = [
        "I/O type    #tasks  trace size  activation  write BW",
        "----------  ------  ----------  ----------  ---------",
    ]
    for row in (res.tasklocal, res.sion):
        rows.append(
            f"{row.io_type:<10}  {row.ntasks:>6}  "
            f"{row.trace_bytes / 10**9:>7.0f} GB  {row.activation_s:>8.1f} s  "
            f"{row.write_bw_mb_s:>6.0f} MB/s"
        )
    rows.append("")
    rows.append(
        f"activation speedup: {res.activation_speedup:.1f}x (paper: 13.1x; "
        "the paper's own Fig. 3a implies ~8x at 32K under the conditions it "
        "reports — production-run variance, see EXPERIMENTS.md)"
    )
    emit("table2_scalasca", "\n".join(rows))
    assert res.activation_speedup > 5
    assert res.sion.write_bw_mb_s > res.tasklocal.write_bw_mb_s
