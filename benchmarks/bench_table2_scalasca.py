"""Table 2 — Scalasca trace-measurement activation time and write bandwidth.

Paper: 32K-core SMG2000 run, 1470 GB of traces through 16 physical files;
activation 369.1 s (task-local) vs 28.1 s (SIONlib) — 13.1x — with write
bandwidth slightly improved (2153 -> 2194 MB/s).

Thin wrapper over the registered ``table2/scalasca`` scenario.
"""

from repro.bench import get_scenario

from conftest import emit, once


def test_table2_scalasca_activation(benchmark):
    sc = get_scenario("table2/scalasca")
    out = once(benchmark, sc.execute)
    emit("table2_scalasca", out.text, scenario=sc.name)
    res = out.raw
    assert res.activation_speedup > 5
    assert res.sion.write_bw_mb_s > res.tasklocal.write_bw_mb_s
