"""Fig. 3 — performance of creating new and opening existing task-local
files in parallel in the same directory, vs. SION multifile creation.

Paper reference points: 64K creates ≈ 6 min and 64K opens ≈ 1 min on
Jugene; 12K creates ≈ 5 min and opens ≈ 20 s on Jaguar; SION multifile
creation < 3 s / < 10 s.

Thin wrapper over the registered ``fig3/*`` scenarios — run them outside
pytest with ``python -m repro.bench run --filter 'fig3/*'``.
"""

from repro.bench import get_scenario

from conftest import emit, once


def test_fig3a_jugene(benchmark):
    sc = get_scenario("fig3/filecreate-jugene")
    out = once(benchmark, sc.execute)
    emit("fig3a_jugene", out.text, scenario=sc.name)
    assert out.raw[-1].sion_create_s < 3.0


def test_fig3b_jaguar(benchmark):
    sc = get_scenario("fig3/filecreate-jaguar")
    out = once(benchmark, sc.execute)
    emit("fig3b_jaguar", out.text, scenario=sc.name)
    assert out.raw[-1].sion_create_s < 10.0
