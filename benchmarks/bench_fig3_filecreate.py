"""Fig. 3 — performance of creating new and opening existing task-local
files in parallel in the same directory, vs. SION multifile creation.

Paper reference points: 64K creates ≈ 6 min and 64K opens ≈ 1 min on
Jugene; 12K creates ≈ 5 min and opens ≈ 20 s on Jaguar; SION multifile
creation < 3 s / < 10 s.
"""

from repro.analysis.results import Series, format_table, human_count
from repro.workloads.filecreate import (
    JAGUAR_TASK_COUNTS,
    JUGENE_TASK_COUNTS,
    run_fig3,
)

from conftest import emit, once


def _render(name, rows):
    series = Series(name, "#tasks", "time (s)", xs=[r.ntasks for r in rows])
    series.add_curve("create files", [r.create_files_s for r in rows])
    series.add_curve("open existing", [r.open_existing_s for r in rows])
    series.add_curve("SION create", [r.sion_create_s for r in rows])
    table = format_table(series)
    table += "\n\nspeedup (create/SION): " + "  ".join(
        f"{human_count(r.ntasks)}:{r.create_speedup:.0f}x" for r in rows
    )
    return table


def test_fig3a_jugene(benchmark, jugene_profile):
    rows = once(benchmark, run_fig3, jugene_profile, JUGENE_TASK_COUNTS)
    emit("fig3a_jugene", _render("fig3a", rows))
    assert rows[-1].sion_create_s < 3.0


def test_fig3b_jaguar(benchmark, jaguar_profile):
    rows = once(benchmark, run_fig3, jaguar_profile, JAGUAR_TASK_COUNTS, 16)
    emit("fig3b_jaguar", _render("fig3b", rows))
    assert rows[-1].sion_create_s < 10.0
