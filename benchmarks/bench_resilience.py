"""resilience: fault-and-recover cycles, as benchmarks.

Thin pytest wrappers over the registered ``resilience/*`` scenarios
plus the qualitative claims behind ISSUE 9's acceptance criteria:

* a buddy-mode checkpoint costs exactly one extra copy of every
  physical byte (the scenario pins replica bytes == primary bytes, so
  the overhead metric is 2.0x by construction, metadata included);
* losing one entire physical file is survivable: the scenario deletes
  file 1, rebuilds it from its buddy, and hash-compares the restored
  set against the pre-loss capture — reaching the metrics *is* the
  byte-identity proof;
* a torn close (metablock 2 never persisted, injected by the fault
  layer with no exception raised) loses nothing that was flushed: the
  shadow rebuild recovers every logical byte and the set verifies deep.

The 64k points run through ``python -m repro.bench run --suite
resilience``; pytest keeps to the 4k points that finish in seconds.
"""

from conftest import emit


def _run(name):
    from repro.bench import get_scenario

    sc = get_scenario(name)
    out = sc.execute()
    emit(name.replace("/", "_").replace("-", "_").replace("[", ".").replace("]", ""),
         out.text, scenario=name)
    return out


def test_buddy_restore_pays_exactly_one_extra_copy():
    out = _run("resilience/buddy-restore[ntasks=4096]")
    # The scenario raises unless replica bytes == primary bytes and the
    # post-recovery hashes match the pre-loss capture; reaching here is
    # the byte-identity proof.
    assert out.metrics["replica_overhead_x"].value == 2.0
    # File 1 of a blocked 2-file mapping holds half the tasks' bytes.
    assert out.metrics["bytes_recovered"].value == (4096 // 2) * 64


def test_torn_close_recovers_every_flushed_byte():
    out = _run("resilience/torn-close-recover[ntasks=4096]")
    assert out.metrics["bytes_recovered"].value == 4096 * 64


def test_recovery_is_cheap_relative_to_the_checkpoint():
    out = _run("resilience/buddy-restore[ntasks=4096]")
    # Rebuilding one file is a streamed byte copy; it must not cost more
    # than the 4096-rank checkpoint that produced the data.
    assert out.metrics["recover_wall_s"].value < out.metrics["write_wall_s"].value
