"""Real-time micro-benchmarks of the functional library itself.

Unlike the figure benches (which measure *virtual* time on the simulated
machines), these measure actual wall-clock performance of the Python
implementation on local files: collective open/close latency, streaming
write/read throughput, and the serial tool path.
"""

import os

import pytest

from repro.backends.localfs import LocalBackend
from repro.sion import paropen, serial
from repro.simmpi import run_spmd

NTASKS = 8
CHUNK = 64 * 1024
PAYLOAD = os.urandom(256 * 1024)


@pytest.fixture
def backend():
    return LocalBackend(blocksize_override=4096)


def _write_multifile(path, backend, payload=PAYLOAD, compress=False):
    def task(comm):
        f = paropen(path, "w", comm, chunksize=CHUNK, nfiles=2,
                    compress=compress, backend=backend)
        f.fwrite(payload)
        f.parclose()

    run_spmd(NTASKS, task)


def test_micro_open_close_latency(benchmark, backend, tmp_path):
    """Collective paropen + parclose with no data (pure metadata path)."""
    counter = iter(range(10**9))

    def open_close():
        path = str(tmp_path / f"oc{next(counter)}.sion")

        def task(comm):
            paropen(path, "w", comm, chunksize=CHUNK, backend=backend).parclose()

        run_spmd(NTASKS, task)

    benchmark(open_close)


def test_micro_fwrite_throughput(benchmark, backend, tmp_path):
    """Chunk-spanning writes: 8 tasks x 256 KiB per round."""
    counter = iter(range(10**9))

    def write_round():
        _write_multifile(str(tmp_path / f"w{next(counter)}.sion"), backend)

    benchmark(write_round)
    benchmark.extra_info["bytes_per_round"] = NTASKS * len(PAYLOAD)


def test_micro_parallel_read_throughput(benchmark, backend, tmp_path):
    path = str(tmp_path / "r.sion")
    _write_multifile(path, backend)

    def read_round():
        def task(comm):
            f = paropen(path, "r", comm, backend=backend)
            data = f.read_all()
            f.parclose()
            return len(data)

        assert run_spmd(NTASKS, task) == [len(PAYLOAD)] * NTASKS

    benchmark(read_round)


def test_micro_serial_global_read(benchmark, backend, tmp_path):
    path = str(tmp_path / "g.sion")
    _write_multifile(path, backend)

    def read_all_tasks():
        with serial.open(path, "r", backend=backend) as sf:
            return sum(len(sf.read_task(r)) for r in range(NTASKS))

    total = benchmark(read_all_tasks)
    assert total == NTASKS * len(PAYLOAD)


def test_micro_compressed_write(benchmark, backend, tmp_path):
    """Transparent-zlib write path (compressible payload)."""
    payload = b"scalasca-trace-record " * 8192
    counter = iter(range(10**9))

    def write_round():
        _write_multifile(
            str(tmp_path / f"z{next(counter)}.sion"), backend, payload, compress=True
        )

    benchmark(write_round)


def test_micro_metablock_roundtrip(benchmark):
    """Encode+decode of a 4096-task metablock 1 (open/close hot path)."""
    import io

    from repro.sion.format import Metablock1

    mb1 = Metablock1(
        fsblksize=2 << 20,
        ntasks_local=4096,
        nfiles=1,
        filenum=0,
        ntasks_global=4096,
        start_of_data=2 << 20,
        metablock2_offset=0,
        globalranks=list(range(4096)),
        chunksizes=[1 << 20] * 4096,
    )

    class _F(io.BytesIO):
        pass

    def roundtrip():
        raw = mb1.encode()
        return Metablock1.decode_from(_F(raw))

    out = benchmark(roundtrip)
    assert out.ntasks_local == 4096
