"""Real-time micro-benchmarks of the functional library itself.

Unlike the figure benches (which measure *virtual* time on the simulated
machines), these measure actual wall-clock performance of the Python
implementation on local files: collective open/close latency, streaming
write/read throughput, and the serial tool path.

The registry's ``micro/*`` scenarios (suite ``full``) record one-shot
versions of these paths into ``BENCH_full.json`` as ungated ``info``
metrics; this file keeps the multi-round pytest-benchmark variants.
"""

import os

import pytest

from repro.backends.localfs import LocalBackend
from repro.bench import get_scenario
from repro.bench.scenarios import (
    build_metablock,
    metablock_roundtrip,
    micro_paropen_roundtrip,
)
from repro.sion import paropen, serial
from repro.simmpi import run_spmd

NTASKS = 8
CHUNK = 64 * 1024
PAYLOAD = os.urandom(256 * 1024)


@pytest.fixture
def backend():
    return LocalBackend(blocksize_override=4096)


def _write_multifile(path, backend, payload=PAYLOAD, compress=False):
    def task(comm):
        f = paropen(path, "w", comm, chunksize=CHUNK, nfiles=2,
                    compress=compress, backend=backend)
        f.fwrite(payload)
        f.parclose()

    run_spmd(NTASKS, task)


def test_micro_open_close_latency(benchmark, backend, tmp_path):
    """Collective paropen + parclose with no data (pure metadata path)."""
    counter = iter(range(10**9))

    def open_close():
        path = str(tmp_path / f"oc{next(counter)}.sion")

        def task(comm):
            paropen(path, "w", comm, chunksize=CHUNK, backend=backend).parclose()

        run_spmd(NTASKS, task)

    benchmark(open_close)


def test_micro_fwrite_throughput(benchmark, backend, tmp_path):
    """Chunk-spanning writes: 8 tasks x 256 KiB per round."""
    counter = iter(range(10**9))

    def write_round():
        _write_multifile(str(tmp_path / f"w{next(counter)}.sion"), backend)

    benchmark(write_round)
    benchmark.extra_info["bytes_per_round"] = NTASKS * len(PAYLOAD)


def test_micro_parallel_read_throughput(benchmark, backend, tmp_path):
    path = str(tmp_path / "r.sion")
    _write_multifile(path, backend)

    def read_round():
        def task(comm):
            f = paropen(path, "r", comm, backend=backend)
            data = f.read_all()
            f.parclose()
            return len(data)

        assert run_spmd(NTASKS, task) == [len(PAYLOAD)] * NTASKS

    benchmark(read_round)


def test_micro_serial_global_read(benchmark, backend, tmp_path):
    path = str(tmp_path / "g.sion")
    _write_multifile(path, backend)

    def read_all_tasks():
        with serial.open(path, "r", backend=backend) as sf:
            return sum(len(sf.read_task(r)) for r in range(NTASKS))

    total = benchmark(read_all_tasks)
    assert total == NTASKS * len(PAYLOAD)


def test_micro_compressed_write(benchmark, backend, tmp_path):
    """Transparent-zlib write path (compressible payload)."""
    payload = b"scalasca-trace-record " * 8192
    counter = iter(range(10**9))

    def write_round():
        _write_multifile(
            str(tmp_path / f"z{next(counter)}.sion"), backend, payload, compress=True
        )

    benchmark(write_round)


def test_micro_metablock_roundtrip(benchmark):
    """Encode+decode of a 4096-task metablock 1 (open/close hot path)."""
    mb1 = build_metablock(4096)
    out = benchmark(metablock_roundtrip, mb1)
    assert out.ntasks_local == 4096


def test_micro_paropen_roundtrip(benchmark, tmp_path):
    """The registered micro scenario's write+read path, timed per round."""
    times = benchmark(micro_paropen_roundtrip, str(tmp_path))
    assert times["write_s"] > 0 and times["read_s"] > 0


def test_micro_scenarios_registered():
    """The wall-clock scenarios exist in the full suite and execute."""
    sc = get_scenario("micro/metablock-roundtrip")
    assert sc.suite == "full"
    out = sc.execute()
    assert out.metrics["best_roundtrip_s"].better == "info"
