"""Ablation — choosing the number of physical files.

More files buy bandwidth (until the backplane saturates) but every file
costs a serialized create and adds token traffic.  This bench combines
both effects into total checkpoint time for a 1 TB write at 64K tasks,
locating the paper's "at least 16 files on both systems" sweet spot.
"""

from repro.analysis.results import Series, format_table
from repro.workloads.common import parallel_io
from repro.workloads.filecreate import sion_create_time

from conftest import emit, once

TB = 10**12
NTASKS = 65536
NFILES = [1, 2, 4, 8, 16, 32, 64, 128]


def _total_times(profile):
    out = []
    for nf in NFILES:
        create = sion_create_time(profile, NTASKS, nf)
        io = parallel_io(profile, NTASKS, 1 * TB, "write", nfiles=nf)
        out.append((nf, create, io.time_s, create + io.time_s))
    return out


def test_ablation_nfiles_tradeoff(benchmark, jugene_profile):
    rows = once(benchmark, _total_times, jugene_profile)
    s = Series("nfiles-tradeoff", "#files", "seconds", xs=[r[0] for r in rows])
    s.add_curve("create", [r[1] for r in rows])
    s.add_curve("write 1TB", [r[2] for r in rows])
    s.add_curve("total", [r[3] for r in rows])
    emit("ablation_nfiles_tradeoff", format_table(s))
    totals = {r[0]: r[3] for r in rows}
    # The optimum sits in the middle: both extremes are worse than 16.
    assert totals[16] < totals[1]
    assert totals[16] <= totals[128]
