"""Ablation — choosing the number of physical files.

More files buy bandwidth (until the backplane saturates) but every file
costs a serialized create and adds token traffic.  The registered
``ablation/nfiles-tradeoff`` scenario combines both effects into total
checkpoint time for a 1 TB write at 64K tasks, locating the paper's "at
least 16 files on both systems" sweet spot.
"""

from repro.bench import get_scenario

from conftest import emit, once


def test_ablation_nfiles_tradeoff(benchmark):
    sc = get_scenario("ablation/nfiles-tradeoff")
    out = once(benchmark, sc.execute)
    emit("ablation_nfiles_tradeoff", out.text, scenario=sc.name)
    totals = {r[0]: r[3] for r in out.raw}
    # The optimum sits in the middle: both extremes are worse than 16.
    assert totals[16] < totals[1]
    assert totals[16] <= totals[128]
