"""Ablation — collective metadata handling vs. naive alternatives.

SIONlib's design has the per-file master gather chunk sizes and write one
metablock (collective close avoids "the inefficiency of having all tasks
write to the metadata block concurrently", paper §3.1).  The registered
``ablation/metadata-exchange`` scenario prices the alternatives on the
simulated metadata service:

* ``collective``  — gather + one metablock write (SIONlib's choice);
* ``per-task metadata writes`` — every task updates the metablock itself,
  serializing on the metablock's FS block like a tiny directory;
* ``per-task files`` — the task-local baseline, for scale.
"""

from repro.bench import get_scenario

from conftest import emit, once


def test_ablation_metadata_exchange(benchmark):
    sc = get_scenario("ablation/metadata-exchange")
    out = once(benchmark, sc.execute)
    emit("ablation_metadata_exchange", out.text, scenario=sc.name)
    for _, collective, naive, tasklocal in out.raw:
        assert collective < naive < tasklocal
