"""Ablation — collective metadata handling vs. naive alternatives.

SIONlib's design has the per-file master gather chunk sizes and write one
metablock (collective close avoids "the inefficiency of having all tasks
write to the metadata block concurrently", paper §3.1).  This bench prices
the alternatives on the simulated metadata service:

* ``collective``  — gather + one metablock write (SIONlib's choice);
* ``per-task metadata writes`` — every task updates the metablock itself,
  serializing on the metablock's FS block like a tiny directory;
* ``per-task files`` — the task-local baseline, for scale.
"""

from repro.analysis.results import Series, format_table
from repro.fs.events import Engine
from repro.fs.metadata import FifoMetadataService, MetadataCosts, MetadataOp
from repro.workloads.filecreate import sion_create_time, tasklocal_metadata_time

from conftest import emit, once

TASK_COUNTS = [1024, 4096, 16384, 65536]

#: Serialized per-task metablock update (lock grab + small write).
_PER_TASK_UPDATE = 2.0e-4


def _naive_metadata_time(profile, ntasks):
    """Every task appends its own entry to the shared metablock."""
    engine = Engine()
    costs = MetadataCosts(create=_PER_TASK_UPDATE)
    svc = FifoMetadataService(engine, costs, name="metablock")
    done = []
    for t in range(ntasks):
        svc.submit(MetadataOp("create", f"meta{t}"), lambda ts, op: done.append(ts))
    engine.run()
    return max(done)


def _sweep(profile):
    rows = []
    for n in TASK_COUNTS:
        rows.append(
            (
                n,
                sion_create_time(profile, n, 1),
                _naive_metadata_time(profile, n) + sion_create_time(profile, n, 1),
                tasklocal_metadata_time(profile, n, "create"),
            )
        )
    return rows


def test_ablation_metadata_exchange(benchmark, jugene_profile):
    rows = once(benchmark, _sweep, jugene_profile)
    s = Series("metadata-exchange", "#tasks", "seconds", xs=[r[0] for r in rows])
    s.add_curve("collective (SION)", [r[1] for r in rows])
    s.add_curve("per-task metablock writes", [r[2] for r in rows])
    s.add_curve("per-task files", [r[3] for r in rows])
    emit("ablation_metadata_exchange", format_table(s))
    for _, collective, naive, tasklocal in rows:
        assert collective < naive < tasklocal
