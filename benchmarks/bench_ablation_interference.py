"""Ablation — collateral damage of create storms (§1's stability claim).

Prices "temporary service disruptions noticeable by arbitrary users": the
latency of one innocent user's ``stat`` while another job creates its
task-local files, for storm sizes up to 64K — against the same bystander
during a SION multifile creation (a handful of creates).
"""

from repro.analysis.results import Series, format_table
from repro.fs.interference import bystander_latency

from conftest import emit, once

STORM_SIZES = [0, 1024, 4096, 16384, 65536]


def _sweep(profile):
    return [bystander_latency(profile.metadata_costs, n) for n in STORM_SIZES]


def test_ablation_bystander_interference(benchmark, jugene_profile):
    rows = once(benchmark, _sweep, jugene_profile)
    s = Series("interference", "storm ops", "seconds", xs=[r.storm_ops for r in rows])
    s.add_curve("bystander latency", [r.storm_latency_s for r in rows])
    s.add_curve("slowdown", [r.slowdown for r in rows])
    sion_like = bystander_latency(jugene_profile.metadata_costs, 16)
    text = format_table(s) + (
        f"\n\nduring a SION creation (16 creates) the same bystander waits "
        f"{sion_like.storm_latency_s * 1e3:.1f} ms — the disruption simply "
        "does not happen"
    )
    emit("ablation_interference", text)
    assert rows[-1].storm_latency_s > 60  # minutes of collateral at 64K
    assert sion_like.storm_latency_s < 0.1
