"""Ablation — collateral damage of create storms (§1's stability claim).

Prices "temporary service disruptions noticeable by arbitrary users": the
latency of one innocent user's ``stat`` while another job creates its
task-local files, for storm sizes up to 64K — against the same bystander
during a SION multifile creation (a handful of creates).

Thin wrapper over the registered ``ablation/interference`` scenario.
"""

from repro.bench import get_scenario

from conftest import emit, once


def test_ablation_bystander_interference(benchmark):
    sc = get_scenario("ablation/interference")
    out = once(benchmark, sc.execute)
    emit("ablation_interference", out.text, scenario=sc.name)
    rows, sion_like = out.raw
    assert rows[-1].storm_latency_s > 60  # minutes of collateral at 64K
    assert sion_like.storm_latency_s < 0.1
