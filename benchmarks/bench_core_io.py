"""core-io: the vectored data plane's call/copy counts as benchmarks.

Thin pytest wrappers over the registered ``core-io/*`` scenarios, adding
the qualitative assertions behind ISSUE 2's acceptance criteria: a
chunk-spanning ``fwrite`` of N fragments issues **one** vectored backend
call, and a ``memoryview`` payload reaches the backend with **zero**
intermediate copies.  The pre-refactor counts are preserved under
``baselines/core_io_prerefactor.json`` for comparison; the current counts
are gated by the committed smoke baseline.
"""

from conftest import emit

from repro.bench import get_scenario


def _run(name):
    sc = get_scenario(name)
    out = sc.execute()
    emit(name.replace("/", "_").replace("-", "_"), out.text, scenario=name)
    return out


def test_fwrite_span_is_one_vectored_call():
    out = _run("core-io/fwrite-span")
    d = out.raw
    assert d["fragments_written"] == 7  # 104 KiB over 16 KiB chunks
    assert d["data_write_calls"] == 1, "fwrite must issue ONE vectored call"
    assert d["copied_fragments"] == 0, "memoryview payload must reach the store uncopied"
    assert d["seeks"] == 0, "the chunk data path is fully positioned"


def test_read_gather_is_one_vectored_call():
    out = _run("core-io/read-gather")
    assert out.raw["data_read_calls"] == 1
    assert out.raw["seeks"] == 0


def test_coalesced_flushes_and_bypass():
    out = _run("core-io/coalesced-flush")
    coalesced, direct = out.raw
    # 48 KiB in 16 KiB flushes: one vectored call per flush, not one per
    # chunk fragment (each flush spans four 4 KiB chunks).
    assert coalesced["data_write_calls"] == 3
    assert coalesced["fragments_written"] == 12
    # The large-write bypass forwards the caller's view untouched.
    assert direct["data_write_calls"] == 1
    assert direct["copied_fragments"] == 0


def test_parallel_path_is_vectored_per_task():
    out = _run("core-io/paropen-span")
    d = out.raw
    assert d["data_write_calls"] == 2  # one scatter_write per task
    assert d["fragments_written"] == 10
    assert d["copied_fragments"] == 0
    assert d["seeks"] == 0


def test_throughput_scenario_executes():
    out = _run("core-io/throughput")
    assert out.metrics["write_mb_s"].better == "info"
    assert out.metrics["cycle_backend_calls"].value == 4
