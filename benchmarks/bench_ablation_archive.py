"""Ablation — the §1 file-management claim, priced on a tape library.

Not a paper figure (the paper argues this qualitatively in its
introduction); this bench quantifies it for Table 2's data volume: 32K
task-local trace files vs. a 16-file SION multifile set, archived while
other users interleave, then retrieved.
"""

from repro.analysis.results import Series, format_table
from repro.workloads.archive import run_archive_comparison, sweep_task_counts

from conftest import emit, once


def test_ablation_tape_archive(benchmark):
    cmp_ = once(benchmark, run_archive_comparison)
    lines = [
        "scenario: 1470 GB of traces, 32K tasks, 4 interleaved archive users",
        "",
        f"archive   task-local: {cmp_.tasklocal_archive_s:>9.0f} s   "
        f"multifile (16): {cmp_.multifile_archive_s:>7.0f} s   "
        f"speedup {cmp_.archive_speedup:.1f}x",
        f"retrieve  task-local: {cmp_.tasklocal_retrieve_s:>9.0f} s   "
        f"multifile (16): {cmp_.multifile_retrieve_s:>7.0f} s   "
        f"speedup {cmp_.retrieve_speedup:.1f}x",
    ]
    sweep = sweep_task_counts([1024, 4096, 16384, 65536])
    s = Series("archive-sweep", "#tasks", "seconds", xs=[p.ntasks for p in sweep])
    s.add_curve("archive task-local", [p.comparison.tasklocal_archive_s for p in sweep])
    s.add_curve("archive multifile", [p.comparison.multifile_archive_s for p in sweep])
    s.add_curve("retrieve task-local", [p.comparison.tasklocal_retrieve_s for p in sweep])
    s.add_curve("retrieve multifile", [p.comparison.multifile_retrieve_s for p in sweep])
    emit("ablation_tape_archive", "\n".join(lines) + "\n\n" + format_table(s))
    assert cmp_.archive_speedup > 2
    assert cmp_.retrieve_speedup > 2
