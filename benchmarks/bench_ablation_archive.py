"""Ablation — the §1 file-management claim, priced on a tape library.

Not a paper figure (the paper argues this qualitatively in its
introduction); this bench quantifies it for Table 2's data volume: 32K
task-local trace files vs. a 16-file SION multifile set, archived while
other users interleave, then retrieved.

Thin wrapper over the registered ``ablation/tape-archive`` scenario.
"""

from repro.bench import get_scenario

from conftest import emit, once


def test_ablation_tape_archive(benchmark):
    sc = get_scenario("ablation/tape-archive")
    out = once(benchmark, sc.execute)
    emit("ablation_tape_archive", out.text, scenario=sc.name)
    cmp_, _sweep = out.raw
    assert cmp_.archive_speedup > 2
    assert cmp_.retrieve_speedup > 2
