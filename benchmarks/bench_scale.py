"""scale: the control plane at 4k-256k tasks, as benchmarks.

Thin pytest wrappers over the registered ``scale/*`` scenarios plus the
qualitative claims behind ISSUE 3's acceptance criteria:

* the 64k-task collective open/close cycle runs **>= 10x** faster than
  the committed pre-optimization record (``baselines/scale_preopt.json``
  — where the thread-per-rank engine could not even finish, the recorded
  value is its wall *budget*, i.e. a conservative floor);
* the serial metadata scan of a 256k-task multifile stays in sub-second
  territory;
* geometry facts (start of data, metablock-2 offset) match the
  pre-optimization layout byte for byte — the speedup must not move a
  single byte on disk;
* the wave-vectorized engine retains only O(1) live python objects per
  rank after a cycle (``py_blocks_per_rank``), its multifile sha256
  matches the pre-rewrite capture (``scale_multifile_hashes.json``),
  and the contention-model sweep reproduces the Table 1 alignment
  factors and the ablation sweep's speedup ordering.

The ``taskbw`` family adds the data-plane acceptance for the process
engine: on hosts with >= 4 cores, 4 proc workers must move **>= 2x**
the aggregate MB/s of 1 proc worker *within the same run* — the
within-run comparison is the only one that transfers between machines,
which is why the committed ``scale_taskbw*.json`` baselines gate
absolute regressions in CI but never carry the scaling claim
themselves (see their ``.meta.json`` sidecars).

The big grid points run through ``python -m repro.bench run --suite
scale``; pytest keeps to the points that finish in seconds.
"""

import os
import pathlib

import pytest
from conftest import emit

from repro.bench import BenchReport, get_scenario

BASELINES = pathlib.Path(__file__).parent / "baselines"

#: ISSUE 3 acceptance: minimum speedup of the 64k open/close cycle over
#: the committed pre-optimization baseline.
MIN_SPEEDUP_64K = 10.0

#: ISSUE 7 acceptance: minimum aggregate-bandwidth scaling of 4 process
#: workers over 1, measured within one run on a >= 4-core host.
TASKBW_MIN_SCALING_4W = 2.0


def _run(name):
    sc = get_scenario(name)
    out = sc.execute()
    emit(name.replace("/", "_").replace("-", "_").replace("[", ".").replace("]", ""),
         out.text, scenario=name)
    return out


def _preopt():
    return BenchReport.load(BASELINES / "scale_preopt.json")


def _expected_geometry(ntasks, chunksize=4096, fsblk=4096):
    """First-principles byte offsets (also asserted inside every scenario
    run, so geometry drift at any grid point fails the suite itself)."""
    from repro.bench.scale import expected_geometry

    return expected_geometry(ntasks, chunksize, fsblk)


def test_paropen_cycle_4k_geometry_exact():
    out = _run("scale/paropen-parclose[ntasks=4096]")
    # Same bytes on disk, at zero tolerance: once from first principles,
    # once against the pre-optimization record — the speedup must not
    # move a single byte (the wall-clock CI gate is deliberately loose).
    start, mb2 = _expected_geometry(4096)
    assert out.metrics["start_of_data_bytes"].value == start
    assert out.metrics["mb2_offset_bytes"].value == mb2
    base = _preopt().scenarios["scale/paropen-parclose[ntasks=4096]"].metrics
    assert out.metrics["start_of_data_bytes"].value == base["start_of_data_bytes"].value
    assert out.metrics["mb2_offset_bytes"].value == base["mb2_offset_bytes"].value


def test_paropen_cycle_64k_is_10x_faster_than_preopt():
    base = _preopt().scenarios["scale/paropen-parclose[ntasks=65536]"]
    out = _run("scale/paropen-parclose[ntasks=65536]")
    start, mb2 = _expected_geometry(65536)
    assert out.metrics["start_of_data_bytes"].value == start
    assert out.metrics["mb2_offset_bytes"].value == mb2
    wall = out.metrics["open_close_wall_s"].value
    floor = base.metrics["open_close_wall_s"].value
    # The baseline value is itself a floor (the thread engine crashed
    # spawning 64k ranks), so this understates the real speedup.
    assert wall * MIN_SPEEDUP_64K <= floor, (
        f"64k open/close took {wall:.1f}s; pre-optimization record is "
        f">= {floor:.0f}s — speedup below {MIN_SPEEDUP_64K}x"
    )


def test_paropen_cycle_4k_engine_invariants():
    # Satellite acceptance of the wave-vectorized engine, at the small
    # point so it stays in the PR loop: bytes pinned against the
    # pre-rewrite capture, O(1) python objects per rank, and a usable
    # phase breakdown + peak-RSS figure in the report.
    from repro.bench.scale import MAX_BLOCKS_PER_RANK, _hash_pins

    out = _run("scale/paropen-parclose[ntasks=4096]")
    pin = _hash_pins().get("4096")
    assert pin is not None, "scale_multifile_hashes.json is missing the 4k point"
    assert out.raw["sha256"] == pin["sha256"]
    assert 0 < out.metrics["py_blocks_per_rank"].value < MAX_BLOCKS_PER_RANK
    assert out.metrics["peak_rss_mb"].value > 0
    for phase in ("phase_open_s", "phase_write_s", "phase_close_s"):
        assert out.metrics[phase].value >= 0


def test_contention_sweep_reproduces_table1_ordering():
    # The sweep itself asserts the ordering (strictly growing speedup as
    # alignment shrinks below the true block) and validates the analytic
    # sharers against the real ChunkLayout; here we re-pin the headline
    # Table 1 factors so a silent recalibration of the jugene profile
    # cannot slip through the scenario's own tolerances unnoticed.
    out = _run("scale/contention-sweep[ntasks=1048576]")
    assert abs(out.metrics["write_factor_16k"].value - 2.53) <= 0.02
    assert abs(out.metrics["read_factor_16k"].value - 1.78) <= 0.02
    assert out.metrics["write_speedup_2048k"].value == 1.0


def test_serial_scan_256k_fast():
    out = _run("scale/serial-scan[ntasks=262144]")
    # ~0.4s here; the pre-optimization scan took 6.4s.  The bound leaves
    # headroom for slow shared CI runners while still catching a return
    # of the per-task decode loops.
    assert out.metrics["scan_wall_s"].value < 3.0
    assert out.metrics["logical_total_bytes"].value == 3 * 64


def test_collectives_round_executes():
    out = _run("scale/collectives[ntasks=4096]")
    for op in ("bcast", "gather", "scatter", "reduce", "barrier", "allgather"):
        assert f"{op}_wall_s" in out.metrics


def test_taskbw_single_worker_runs_and_verifies():
    # Any core count: the scenario itself round-trips the multifile
    # through the serial view, so a pass here is a correctness statement
    # about the proc engine's data path, not a speed claim.
    out = _run("scale/taskbw[workers=1]")
    assert out.metrics["agg_mb_per_s"].value > 0
    assert out.metrics["write_wall_s"].value > 0


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="bandwidth scaling needs >= 4 real cores",
)
def test_taskbw_scales_with_cores():
    # ISSUE 7 acceptance: aggregate write bandwidth of the proc engine
    # must scale with worker processes — >= 2x the single-worker figure
    # at 4 workers, within this run.  (The thread engine cannot pass
    # this on any hardware; see baselines/scale_taskbw_preopt.json for
    # its committed flat profile.)
    agg1 = _run("scale/taskbw[workers=1]").metrics["agg_mb_per_s"].value
    agg4 = _run("scale/taskbw[workers=4]").metrics["agg_mb_per_s"].value
    assert agg4 >= TASKBW_MIN_SCALING_4W * agg1, (
        f"4 workers moved {agg4:,.0f} MB/s vs {agg1:,.0f} MB/s for 1 — "
        f"scaling below {TASKBW_MIN_SCALING_4W}x"
    )
