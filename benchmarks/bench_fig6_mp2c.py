"""Fig. 6 — MP2C restart write/read times on 1000 Jugene cores.

Paper: the single-file-sequential baseline grows linearly with particle
count while SION stays flat until the one-FS-block-per-task floor; at 33 M
particles the improvement is 1-2 orders of magnitude, and billion-particle
problems become feasible.

Thin wrapper over the registered ``fig6/mp2c-restart`` scenario.
"""

from repro.bench import get_scenario
from repro.workloads.mp2c_io import crossover_particles_m

from conftest import emit, once


def test_fig6_mp2c_restart(benchmark):
    sc = get_scenario("fig6/mp2c-restart")
    out = once(benchmark, sc.execute)
    emit("fig6_mp2c", out.text, scenario=sc.name)
    by_m = {p.particles_m: p for p in out.raw}
    assert crossover_particles_m(out.raw) is not None
    assert by_m[33.0].write_speedup >= 10
