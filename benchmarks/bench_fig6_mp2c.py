"""Fig. 6 — MP2C restart write/read times on 1000 Jugene cores.

Paper: the single-file-sequential baseline grows linearly with particle
count while SION stays flat until the one-FS-block-per-task floor; at 33 M
particles the improvement is 1-2 orders of magnitude, and billion-particle
problems become feasible.
"""

from repro.analysis.plots import ascii_chart
from repro.analysis.results import Series, format_table
from repro.workloads.mp2c_io import crossover_particles_m, run_fig6

from conftest import emit, once


def test_fig6_mp2c_restart(benchmark, jugene_profile):
    pts = once(benchmark, run_fig6, jugene_profile)
    s = Series("fig6", "Mio. particles", "time (s)", xs=[p.particles_m for p in pts])
    s.add_curve("write, SION", [p.sion_write_s for p in pts])
    s.add_curve("read, SION", [p.sion_read_s for p in pts])
    s.add_curve("write", [p.single_write_s for p in pts])
    s.add_curve("read", [p.single_read_s for p in pts])
    text = format_table(s)
    text += "\n\n" + ascii_chart(s, log_x=True, log_y=True)
    cross = crossover_particles_m(pts)
    by_m = {p.particles_m: p for p in pts}
    text += (
        f"\n\ncrossover at ~{cross} M particles; "
        f"speedup at 33 M: write {by_m[33.0].write_speedup:.0f}x, "
        f"read {by_m[33.0].read_speedup:.0f}x (paper: 1-2 orders of magnitude)"
    )
    emit("fig6_mp2c", text)
    assert cross is not None
    assert by_m[33.0].write_speedup >= 10
