"""(Re)capture the ``repartition`` suite baselines with provenance sidecars.

Runs the registered ``repartition/*`` scenarios of the *current* checkout
and writes two committed baselines, mirroring the role
``record_collective_baseline.py`` plays for the ``collective`` suite:

* ``benchmarks/baselines/repartition.json`` — the full suite (the
  4k/16k/64k read grid, the reader-count sweep, the collective-prefetch
  point, and the modelled restart/analysis cycle); diffed by the nightly
  workflow.
* ``benchmarks/baselines/repartition_ci.json`` — the ``ci-grid`` slice
  (4k/16k) the ``repartition-bench`` CI job gates on every push.

Next to each baseline a ``<name>.meta.json`` provenance sidecar records
the capture command, git SHA, timestamp, environment fingerprint, and the
pre-repartition context: before the OpenSpec/AccessPlan pipeline landed,
``paropen(..., "r")`` required exactly the writer world's task count —
the only m != n consumers were the *serial* tools, whose global-view scan
issues one positioned read per recorded block (O(n), single process).
The baseline carries that reference so the O(m) counts the scenarios pin
are meaningful against what the container previously allowed.

Usage:
    PYTHONPATH=src python benchmarks/tools/record_repartition_baseline.py \
        [-o benchmarks/baselines] [--ci-only]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _capture(suite_tags: tuple[str, ...]):
    from repro.bench.runner import run_suite

    def progress(msg: str) -> None:
        print(msg, flush=True)

    return run_suite(suite="repartition", tags=suite_tags, progress=progress)


def _prerepartition_context() -> dict:
    """The m != n reference before partitioned reads existed.

    A small serial-scan measurement plus the closed forms that hold at
    any scale: the serial global view was the only differently sized
    consumer, and it reads one fragment per recorded block from a single
    process — no parallelism, O(n) positioned reads.
    """
    from repro.backends.instrument import CountingBackend
    from repro.backends.simfs_backend import SimBackend
    from repro.bench.collective import _write_cycle
    from repro.fs.simfs import SimFS
    from repro.sion import serial

    ntasks = 256
    backend = CountingBackend(SimBackend(SimFS(blocksize_override=4096)))
    _write_cycle(backend, ntasks, "threads", path="/pre.sion")
    before = backend.snapshot()["data_read_calls"]
    with serial.open("/pre.sion", "r", backend=backend) as sf:
        for rank in range(ntasks):
            sf.read_task(rank)
    serial_reads = backend.snapshot()["data_read_calls"] - before
    assert serial_reads >= ntasks
    return {
        "mode": "serial global view (pre-repartition)",
        "measured_ntasks": ntasks,
        "measured_serial_scan_read_calls": serial_reads,
        "serial_scan_closed_form": ">= nwriters (one fragment per block, one process)",
        "partitioned_read_closed_form": "nreaders + 8 * nfiles + 4",
        "prefetch_read_closed_form": "ceil(nreaders / collectsize) + 8 * nfiles + 4",
        "matched_world_requirement": "paropen(..., 'r') required exactly "
        "ntasks ranks before ISSUE 5",
    }


def _write_with_sidecar(report, path: Path, context: dict, argv: list[str]) -> None:
    from repro.bench.results import utc_now_iso

    report.save(path)
    sidecar = {
        "artifact": path.name,
        "suite": report.suite,
        "scenarios": sorted(report.scenarios),
        "git_sha": report.git_sha,
        "created": utc_now_iso(),
        "environment": report.environment,
        "capture_command": "PYTHONPATH=src python "
        "benchmarks/tools/record_repartition_baseline.py " + " ".join(argv),
        "pre_repartition_reference": context,
    }
    path.with_suffix(".meta.json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {path} (+ {path.with_suffix('.meta.json').name})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output-dir", default="benchmarks/baselines",
        help="directory receiving repartition.json / repartition_ci.json",
    )
    parser.add_argument(
        "--ci-only", action="store_true",
        help="recapture only the ci-grid slice (repartition_ci.json)",
    )
    args = parser.parse_args(argv)
    argv = argv if argv is not None else sys.argv[1:]

    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    context = _prerepartition_context()

    ci_report = _capture(("ci-grid",))
    if ci_report.failed:
        for res in ci_report.failed:
            print(f"FAILED {res.name}:\n{res.error}", file=sys.stderr)
        return 1
    _write_with_sidecar(ci_report, out_dir / "repartition_ci.json", context, argv)

    if not args.ci_only:
        full_report = _capture(())
        if full_report.failed:
            for res in full_report.failed:
                print(f"FAILED {res.name}:\n{res.error}", file=sys.stderr)
            return 1
        _write_with_sidecar(
            full_report, out_dir / "repartition.json", context, argv
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
