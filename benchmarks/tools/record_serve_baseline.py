"""(Re)capture the ``serve`` suite baselines with provenance sidecars.

Runs the registered ``serve/*`` scenarios of the *current* checkout and
writes two committed baselines, mirroring the role the other
``record_*_baseline.py`` tools play for their suites:

* ``benchmarks/baselines/serve.json`` — the full suite (the 256/1024/
  4096-session load grid, the mixed-op point, and the concurrency
  sweep); diffed by the nightly workflow.
* ``benchmarks/baselines/serve_ci.json`` — the ``ci-grid`` slice
  (256/1024-session load + the mixed-op point) the ``serve-bench`` CI
  job gates on every push with ``compare --baseline-only``.

Next to each baseline a ``<name>.meta.json`` provenance sidecar records
the capture command, git SHA, timestamp, environment fingerprint, and
the pre-serve context: before ISSUE 6 every consumer of a sealed
container paid the full metadata decode *per open* and every read went
straight to the backend — `repro.fs.cache` only *modelled* client-side
caching.  The measured reference below (backend data reads for one full
sweep over the container, repeated twice with no cache) is what the
gateway's warm-pass pin of **zero** backend reads is measured against.

Latency metrics are wall-clock, so baselines should be recorded on a
quiet machine; the in-scenario pins (hit rates, call counts, byte
verification) are deterministic and recorded as exact values.

Usage:
    PYTHONPATH=src python benchmarks/tools/record_serve_baseline.py \
        [-o benchmarks/baselines] [--ci-only]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _capture(suite_tags: tuple[str, ...]):
    from repro.bench.runner import run_suite

    def progress(msg: str) -> None:
        print(msg, flush=True)

    return run_suite(suite="serve", tags=suite_tags, progress=progress)


def _preserve_context() -> dict:
    """The uncached reference the serve layer's warm pass is measured against.

    Two full sweeps over a small sealed container through the plain
    serial view: without a chunk cache the second sweep costs exactly as
    many backend data reads as the first — re-reads never get cheaper.
    """
    from repro.backends.instrument import CountingBackend
    from repro.backends.simfs_backend import SimBackend
    from repro.bench.collective import _write_cycle
    from repro.fs.simfs import SimFS
    from repro.sion import serial

    ntasks = 256
    backend = CountingBackend(SimBackend(SimFS(blocksize_override=4096)))
    _write_cycle(backend, ntasks, "threads", path="/pre.sion")

    def sweep() -> int:
        before = backend.snapshot()["data_read_calls"]
        with serial.open("/pre.sion", "r", backend=backend) as sf:
            for rank in range(ntasks):
                sf.read_task(rank)
        return backend.snapshot()["data_read_calls"] - before

    first, second = sweep(), sweep()
    assert second >= first > 0
    return {
        "mode": "uncached serial view (pre-serve)",
        "measured_ntasks": ntasks,
        "first_sweep_read_calls": first,
        "repeat_sweep_read_calls": second,
        "uncached_closed_form": "every sweep pays O(n) backend reads; "
        "re-reads never get cheaper without a cache",
        "serve_warm_pass_pin": "0 backend data reads, hit-rate > 0.9, "
        "all logical bytes served from the shared chunk cache",
    }


def _write_with_sidecar(report, path: Path, context: dict, argv: list[str]) -> None:
    from repro.bench.results import utc_now_iso

    report.save(path)
    sidecar = {
        "artifact": path.name,
        "suite": report.suite,
        "scenarios": sorted(report.scenarios),
        "git_sha": report.git_sha,
        "created": utc_now_iso(),
        "environment": report.environment,
        "capture_command": "PYTHONPATH=src python "
        "benchmarks/tools/record_serve_baseline.py " + " ".join(argv),
        "pre_serve_reference": context,
    }
    path.with_suffix(".meta.json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {path} (+ {path.with_suffix('.meta.json').name})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output-dir", default="benchmarks/baselines",
        help="directory receiving serve.json / serve_ci.json",
    )
    parser.add_argument(
        "--ci-only", action="store_true",
        help="recapture only the ci-grid slice (serve_ci.json)",
    )
    args = parser.parse_args(argv)
    argv = argv if argv is not None else sys.argv[1:]

    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    context = _preserve_context()

    ci_report = _capture(("ci-grid",))
    if ci_report.failed:
        for res in ci_report.failed:
            print(f"FAILED {res.name}:\n{res.error}", file=sys.stderr)
        return 1
    _write_with_sidecar(ci_report, out_dir / "serve_ci.json", context, argv)

    if not args.ci_only:
        full_report = _capture(())
        if full_report.failed:
            for res in full_report.failed:
                print(f"FAILED {res.name}:\n{res.error}", file=sys.stderr)
            return 1
        _write_with_sidecar(full_report, out_dir / "serve.json", context, argv)
    return 0


if __name__ == "__main__":
    sys.exit(main())
