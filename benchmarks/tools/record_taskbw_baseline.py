"""(Re)capture the ``scale/taskbw`` data-plane baselines with sidecars.

Runs the task-local write-bandwidth grid (1/2/4 workers, real bytes over
``LocalBackend`` into a tempdir) of the *current* checkout and writes two
committed baselines, mirroring the role ``record_scale_preopt.py`` plays
for the control-plane grid:

* ``benchmarks/baselines/scale_taskbw.json`` — the grid under the
  process engine (``engine="proc"``, the shipped default).  The
  ``scale-bench`` CI job gates its slice of the ``ci-grid`` run against
  this file with ``--baseline-only``.
* ``benchmarks/baselines/scale_taskbw_preopt.json`` — the same grid
  forced onto the thread-per-rank engine via the runner's parameter
  override.  This is the pre-optimization reference: one interpreter
  lock, so aggregate bandwidth stays flat (or falls) as workers are
  added no matter how many cores the machine has.  It is recorded as a
  reference, not a CI gate — the scaling acceptance itself lives in
  ``benchmarks/bench_scale.py`` and compares proc@4 against proc@1
  *within one run on one machine*, because absolute MB/s never
  transfers between hosts.

Next to each baseline a ``<name>.meta.json`` provenance sidecar records
the capture command, git SHA, timestamp, environment fingerprint, and —
crucially for this family — the capture host's core count.  On a
single-core host the proc grid cannot show scaling (all workers
time-share one core and the fork/IPC overhead makes proc *slower* than
threads); the committed numbers are then only a regression floor, and
the sidecar says so.

Usage:
    PYTHONPATH=src python benchmarks/tools/record_taskbw_baseline.py \
        [-o benchmarks/baselines]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def _capture(engine_override: str | None):
    from repro.bench.runner import run_suite

    def progress(msg: str) -> None:
        print(msg, flush=True)

    overrides = {"engine": engine_override} if engine_override else None
    return run_suite(
        suite="scale", tags=("taskbw",), progress=progress, param_overrides=overrides
    )


def _write_with_sidecar(report, path: Path, role: str, argv: list[str]) -> None:
    from repro.bench.results import utc_now_iso

    report.save(path)
    ncpu = os.cpu_count() or 1
    sidecar = {
        "artifact": path.name,
        "suite": report.suite,
        "scenarios": sorted(report.scenarios),
        "git_sha": report.git_sha,
        "created": utc_now_iso(),
        "environment": report.environment,
        "capture_command": "PYTHONPATH=src python "
        "benchmarks/tools/record_taskbw_baseline.py " + " ".join(argv),
        "role": role,
        "capture_cpu_count": ncpu,
        "scaling_visible_at_capture": ncpu >= 4,
        "notes": (
            "Aggregate MB/s is hardware-bound; cross-host comparisons are "
            "meaningless.  The scaling acceptance (proc@4 >= 2x proc@1) is "
            "asserted within-run by benchmarks/bench_scale.py on hosts with "
            ">= 4 cores; this file only floors per-point regressions."
        ),
    }
    path.with_suffix(".meta.json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {path} (+ {path.with_suffix('.meta.json').name})")


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--outdir",
        default="benchmarks/baselines",
        help="directory receiving the baseline files (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    print("== proc engine (shipped default) ==")
    current = _capture(None)
    if current.failed:
        for res in current.failed:
            print(f"FAILED {res.name}:\n{res.error}", file=sys.stderr)
        return 1
    _write_with_sidecar(
        current,
        outdir / "scale_taskbw.json",
        "current implementation (proc engine); CI regression floor",
        argv,
    )

    print("== thread engine (pre-optimization reference) ==")
    preopt = _capture("threads")
    if preopt.failed:
        for res in preopt.failed:
            print(f"FAILED {res.name}:\n{res.error}", file=sys.stderr)
        return 1
    _write_with_sidecar(
        preopt,
        outdir / "scale_taskbw_preopt.json",
        "thread-per-rank engine (pre-proc single-GIL reference)",
        argv,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
