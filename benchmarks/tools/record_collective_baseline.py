"""(Re)capture the ``collective`` suite baselines with provenance sidecars.

Runs the registered ``collective/*`` scenarios of the *current* checkout
and writes two committed baselines, mirroring the role
``record_scale_preopt.py`` plays for the ``scale`` suite:

* ``benchmarks/baselines/collective.json`` — the full suite (4k/16k/64k
  write/read waves, the direct-vs-collective equivalence point, and the
  nfiles x collectors tradeoff sweep); diffed by the nightly workflow.
* ``benchmarks/baselines/collective_ci.json`` — the ``ci-grid`` slice
  (4k/16k) the ``collective-bench`` CI job gates on every push.

Next to each baseline a ``<name>.meta.json`` provenance sidecar records
the capture command, git SHA, timestamp, environment fingerprint, and the
pre-collective context: the direct-mode backend-call counts the same
workload needed before collector aggregation existed, so the baseline
carries its own before/after record (the counts the CountingBackend
scenarios pin are meaningful only against that O(ntasks) reference).

Usage:
    PYTHONPATH=src python benchmarks/tools/record_collective_baseline.py \
        [-o benchmarks/baselines] [--ci-only]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _capture(suite_tags: tuple[str, ...]):
    from repro.bench.runner import run_suite

    def progress(msg: str) -> None:
        print(msg, flush=True)

    return run_suite(suite="collective", tags=suite_tags, progress=progress)


def _precollective_context() -> dict:
    """Direct-mode reference counts for the sidecar (the 'before' record).

    One physical backend call per task per write plus the metadata
    writes — measured here on a small world and stated as the closed form
    that holds at any scale, so the sidecar documents what the collective
    counts are an improvement over without a multi-hour thread-engine run.
    """
    from repro.backends.instrument import CountingBackend
    from repro.backends.simfs_backend import SimBackend
    from repro.bench.collective import METADATA_WRITES_PER_FILE, _write_cycle
    from repro.fs.simfs import SimFS

    ntasks = 256
    backend = CountingBackend(SimBackend(SimFS(blocksize_override=4096)))
    _write_cycle(backend, ntasks, "threads")
    snap = backend.snapshot()
    assert snap["data_write_calls"] == ntasks + METADATA_WRITES_PER_FILE
    return {
        "mode": "direct (pre-collective)",
        "measured_ntasks": ntasks,
        "measured_data_write_calls": snap["data_write_calls"],
        "data_write_calls_closed_form": "ntasks + 3 * nfiles",
        "data_read_calls_closed_form": "ntasks + 8 * nfiles + 4",
        "collective_write_calls_closed_form": "ncollectors + 3 * nfiles",
        "collective_read_calls_closed_form": "ncollectors + 8 * nfiles + 4",
    }


def _write_with_sidecar(report, path: Path, context: dict, argv: list[str]) -> None:
    from repro.bench.results import utc_now_iso

    report.save(path)
    sidecar = {
        "artifact": path.name,
        "suite": report.suite,
        "scenarios": sorted(report.scenarios),
        "git_sha": report.git_sha,
        "created": utc_now_iso(),
        "environment": report.environment,
        "capture_command": "PYTHONPATH=src python "
        "benchmarks/tools/record_collective_baseline.py " + " ".join(argv),
        "pre_collective_reference": context,
    }
    path.with_suffix(".meta.json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {path} (+ {path.with_suffix('.meta.json').name})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output-dir", default="benchmarks/baselines",
        help="directory receiving collective.json / collective_ci.json",
    )
    parser.add_argument(
        "--ci-only", action="store_true",
        help="recapture only the ci-grid slice (collective_ci.json)",
    )
    args = parser.parse_args(argv)
    argv = argv if argv is not None else sys.argv[1:]

    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    context = _precollective_context()

    ci_report = _capture(("ci-grid",))
    if ci_report.failed:
        for res in ci_report.failed:
            print(f"FAILED {res.name}:\n{res.error}", file=sys.stderr)
        return 1
    _write_with_sidecar(ci_report, out_dir / "collective_ci.json", context, argv)

    if not args.ci_only:
        full_report = _capture(())
        if full_report.failed:
            for res in full_report.failed:
                print(f"FAILED {res.name}:\n{res.error}", file=sys.stderr)
            return 1
        _write_with_sidecar(
            full_report, out_dir / "collective.json", context, argv
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
