"""Record content fingerprints of the ``scale`` open/write/close multifile.

Captures ``benchmarks/baselines/scale_multifile_hashes.json``: the sha256
content fingerprint (:func:`repro.bench.scale.multifile_fingerprint`) of the
multifile produced by the standard ``scale/paropen-parclose`` cycle at each
grid point, plus its layout geometry.  The file is the *byte-identity pin*
across engine generations: a rewritten SPMD engine must reproduce these
hashes exactly, or it changed what lands on disk — a failure mode the
wall-clock gates' wide thresholds would never see.

The committed baseline was captured with the engine noted in its
``recorded.engine_generation`` field *before* the wave-vectorized rewrite
landed, so a fresh run on the current checkout directly answers "does the
new engine still write the same bytes?".

Usage:
    PYTHONPATH=src python benchmarks/tools/record_scale_fingerprints.py \
        [-o benchmarks/baselines/scale_multifile_hashes.json] \
        [--ntasks 4096 65536 262144] [--engine bulk]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

DEFAULT_NTASKS = (4096, 16384, 65536, 262144)
CHUNKSIZE = 4096
FSBLK = 4096
PAYLOAD = 64


def capture_point(ntasks: int, engine: str) -> dict:
    """Run one paropen->fwrite->parclose cycle and fingerprint the result."""
    from repro.backends.simfs_backend import SimBackend
    from repro.bench.scale import expected_geometry, multifile_fingerprint
    from repro.fs.simfs import SimFS
    from repro.simmpi import run_spmd
    from repro.sion import paropen

    backend = SimBackend(SimFS(blocksize_override=FSBLK))
    payload = bytes([0xAB]) * PAYLOAD

    def program(comm):
        f = paropen(
            "/scale.sion",
            "w",
            comm,
            chunksize=CHUNKSIZE,
            fsblksize=FSBLK,
            backend=backend,
        )
        f.fwrite(payload)
        f.parclose()
        return (f.layout.start_of_data, f.mb1.metablock2_offset)

    t0 = time.perf_counter()
    out = run_spmd(ntasks, program, engine=engine)
    wall = time.perf_counter() - t0
    geometry = out[0]
    if tuple(geometry) != expected_geometry(ntasks, CHUNKSIZE, FSBLK):
        raise AssertionError(f"geometry drifted at ntasks={ntasks}: {geometry}")
    digest = multifile_fingerprint(backend, "/scale.sion", nfiles=1)
    size, extents = backend.fs.extents_of("/scale.sion")
    return {
        "sha256": digest,
        "file_size": size,
        "extent_count": len(extents),
        "start_of_data": geometry[0],
        "mb2_offset": geometry[1],
        "wall_s": round(wall, 3),
    }


def main(argv: list[str] | None = None) -> int:
    root = Path(__file__).resolve().parents[2]
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "-o",
        "--output",
        type=Path,
        default=root / "benchmarks" / "baselines" / "scale_multifile_hashes.json",
    )
    ap.add_argument("--ntasks", type=int, nargs="+", default=list(DEFAULT_NTASKS))
    ap.add_argument("--engine", default="bulk")
    args = ap.parse_args(argv)

    points = {}
    for n in args.ntasks:
        print(f"[{n}] running {args.engine} cycle ...", flush=True)
        points[str(n)] = capture_point(n, args.engine)
        print(f"[{n}] {points[str(n)]['sha256'][:16]}... "
              f"({points[str(n)]['wall_s']} s)", flush=True)

    doc = {
        "schema": 1,
        "geometry": {
            "chunksize": CHUNKSIZE,
            "fsblksize": FSBLK,
            "payload_bytes": PAYLOAD,
            "nfiles": 1,
            "path": "/scale.sion",
        },
        "recorded": {
            "engine": args.engine,
            "engine_generation": "pre-wave-vectorization (per-rank op logs)",
            "date": time.strftime("%Y-%m-%d"),
            "python": platform.python_version(),
        },
        "points": points,
    }
    args.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
