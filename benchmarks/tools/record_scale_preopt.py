"""Record the ``scale`` suite baseline of the *current* checkout.

This tool exists to capture ``benchmarks/baselines/scale_preopt.json``: the
control-plane cost of the pre-optimization implementation (thread-per-rank
SPMD engine, scalar metadata plane), measured point by point in isolated
subprocesses so a point that cannot finish does not take the capture down
with it.  Points that exceed their wall budget are recorded *at the budget*
and flagged ``lower_bound`` in their params — the true pre-optimization
cost is at least the recorded value, so any speedup computed against it is
conservative.

Scenario and metric names match the registered ``scale/*`` scenarios
(``repro.bench.scale``) exactly, so ``python -m repro.bench compare`` can
diff a fresh run against this file directly.

Usage:
    PYTHONPATH=src python benchmarks/tools/record_scale_preopt.py \
        [-o benchmarks/baselines/scale_preopt.json] [--engine threads]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

#: (scenario family, ntasks, wall budget seconds) — budgets sized for the
#: thread engine; the bulk engine finishes each point in seconds.  The
#: ``scale/collectives`` family is intentionally absent: its pre-engine
#: in-program per-op timings are not semantically comparable to the bulk
#: engine's whole-run rounds, so it carries no pre-optimization record.
POINTS = [
    ("serial-scan", 4096, 300),
    ("serial-scan", 16384, 300),
    ("serial-scan", 65536, 600),
    ("serial-scan", 262144, 900),
    ("paropen-parclose", 4096, 900),
    ("paropen-parclose", 16384, 1500),
    ("paropen-parclose", 65536, 2400),
]

CHUNKSIZE = 4096
FSBLK = 4096
PAYLOAD = 64


def _run_point(family: str, ntasks: int, engine: str) -> dict[str, float]:
    """Child-process body: run one scenario point, print metrics as JSON."""
    from repro.backends.simfs_backend import SimBackend
    from repro.fs.simfs import SimFS

    if family == "serial-scan":
        from repro.sion import serial

        backend = SimBackend(SimFS(blocksize_override=FSBLK))
        writers = [0, ntasks // 2, ntasks - 1]
        t0 = time.perf_counter()
        f = serial.open(
            "/scan.sion",
            "w",
            chunksizes=[CHUNKSIZE] * ntasks,
            fsblksize=FSBLK,
            nfiles=4,
            backend=backend,
        )
        for rank in writers:
            f.seek(rank, 0, 0)
            f.write(b"\xab" * PAYLOAD)
        f.close()
        create_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        g = serial.open("/scan.sion", "r", backend=backend)
        loc = g.get_locations()
        total = loc.total_bytes()
        g.close()
        scan_wall = time.perf_counter() - t0
        if total != PAYLOAD * len(writers):
            raise AssertionError(f"scan saw {total} logical bytes")
        return {
            "create_wall_s": create_wall,
            "scan_wall_s": scan_wall,
            "logical_total_bytes": float(total),
        }

    import threading

    threading.stack_size(512 * 1024)
    from repro.simmpi import run_spmd

    import inspect

    spmd_kwargs: dict = {"timeout": None}
    if "engine" in inspect.signature(run_spmd).parameters:
        spmd_kwargs["engine"] = engine
    elif engine != "threads":
        raise SystemExit(f"this checkout has no SPMD engine selector ({engine!r})")

    if family == "collectives":
        walls: dict[str, float] = {}

        def program(comm):
            for name, op in (
                ("bcast", lambda: comm.bcast(comm.rank if comm.rank == 0 else None)),
                ("gather", lambda: comm.gather(comm.rank)),
                ("scatter", lambda: comm.scatter(
                    list(range(comm.size)) if comm.rank == 0 else None
                )),
                ("reduce", lambda: comm.reduce(1)),
                ("barrier", comm.barrier),
                ("allgather", lambda: comm.allgather(comm.rank)),
            ):
                comm.barrier()
                t0 = time.perf_counter()
                op()
                if comm.rank == 0:
                    walls[f"{name}_wall_s"] = time.perf_counter() - t0

        run_spmd(ntasks, program, **spmd_kwargs)
        return walls

    if family == "paropen-parclose":
        from repro.sion import paropen

        backend = SimBackend(SimFS(blocksize_override=FSBLK))
        payload = b"\xab" * PAYLOAD

        def program(comm):
            f = paropen(
                "/scale.sion",
                "w",
                comm,
                chunksize=CHUNKSIZE,
                fsblksize=FSBLK,
                backend=backend,
            )
            f.fwrite(payload)
            f.parclose()
            return (f.layout.start_of_data, f.mb1.metablock2_offset)

        t0 = time.perf_counter()
        out = run_spmd(ntasks, program, **spmd_kwargs)
        wall = time.perf_counter() - t0
        start_of_data, mb2_offset = out[0]
        return {
            "open_close_wall_s": wall,
            "tasks_per_s": ntasks / wall,
            "start_of_data_bytes": float(start_of_data),
            "mb2_offset_bytes": float(mb2_offset),
        }

    raise SystemExit(f"unknown scenario family {family!r}")


def _point_entry(family: str, ntasks: int, engine: str) -> tuple[str, dict]:
    name = f"scale/{family}[ntasks={ntasks}]"
    params: dict = {"ntasks": ntasks}
    if family == "serial-scan":
        params.update(
            chunksize=CHUNKSIZE, fsblksize=FSBLK, nfiles=4,
            payload_bytes=PAYLOAD, writers=3,
        )
    elif family == "paropen-parclose":
        params.update(
            chunksize=CHUNKSIZE, fsblksize=FSBLK, nfiles=1,
            payload_bytes=PAYLOAD, engine=engine,
        )
    else:
        params.update(rounds=1, engine=engine)
    return name, params


#: Which metrics carry wall budgets when a point times out (gated, lower).
BUDGET_METRICS = {
    "paropen-parclose": [
        ("open_close_wall_s", "s"),
    ],
    "collectives": [
        (f"{op}_wall_s", "s")
        for op in ("bcast", "gather", "scatter", "reduce", "barrier", "allgather")
    ],
    "serial-scan": [("create_wall_s", "s"), ("scan_wall_s", "s")],
}

INFO_METRICS = {"tasks_per_s"}
BYTE_METRICS = {"start_of_data_bytes", "mb2_offset_bytes", "logical_total_bytes"}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--point", nargs=2, metavar=("FAMILY", "NTASKS"), default=None)
    parser.add_argument("--engine", default="threads")
    parser.add_argument("-o", "--output", default="benchmarks/baselines/scale_preopt.json")
    args = parser.parse_args()

    if args.point is not None:
        metrics = _run_point(args.point[0], int(args.point[1]), args.engine)
        print(json.dumps(metrics))
        return 0

    from repro.bench.results import BenchReport, Metric, ScenarioResult

    report = BenchReport(suite="scale")
    out_path = Path(args.output)
    for family, ntasks, budget in POINTS:
        name, params = _point_entry(family, ntasks, args.engine)
        print(f"measuring {name} (budget {budget}s) ...", flush=True)
        t0 = time.perf_counter()
        try:
            proc = subprocess.run(
                [sys.executable, __file__, "--point", family, str(ntasks),
                 "--engine", args.engine],
                capture_output=True,
                text=True,
                timeout=budget,
            )
            timed_out = False
        except subprocess.TimeoutExpired:
            timed_out = True
            proc = None
        wall = time.perf_counter() - t0
        metrics: dict[str, Metric] = {}
        error = None
        if timed_out or proc.returncode != 0:
            # Record the budget as a floor so speedups stay conservative.
            params["lower_bound"] = True
            if not timed_out:
                error_tail = (proc.stderr or "").strip().splitlines()[-3:]
                print(f"  point failed: {' | '.join(error_tail)}", flush=True)
                params["failed"] = True
            for mname, unit in BUDGET_METRICS[family]:
                metrics[mname] = Metric(float(budget), unit, "lower")
            print(f"  recorded floor {budget}s ({'timeout' if timed_out else 'crash'})",
                  flush=True)
        else:
            raw = json.loads(proc.stdout.strip().splitlines()[-1])
            for mname, value in raw.items():
                if mname in INFO_METRICS:
                    metrics[mname] = Metric(float(value), "tasks/s", "info")
                elif mname in BYTE_METRICS:
                    metrics[mname] = Metric(float(value), "bytes", "lower")
                else:
                    metrics[mname] = Metric(float(value), "s", "lower")
            print(f"  ok in {wall:.1f}s", flush=True)
        metrics["wall_s"] = Metric(wall, "s", "info")
        report.add(ScenarioResult(
            name=name,
            suite="scale",
            tags=("scale", "control-plane", family),
            params=params,
            metrics=metrics,
            wall_s=wall,
            error=error,
        ))
        report.save(out_path)  # incremental: keep partial results on abort
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
