"""Refresh the ``scale`` wall-clock baselines and their provenance sidecars.

Runs the full scale suite once (every control-plane grid point including
the nightly 2^20-task cycle, the contention-model sweep, and the taskbw
data plane), then writes:

* ``benchmarks/baselines/scale.json`` — the control-plane scenarios of
  that run (the nightly full-grid gate; taskbw is excluded, it has its
  own hardware-annotated baseline pair);
* ``benchmarks/baselines/scale_ci.json`` — the ``ci-grid``-tagged subset
  (the push-gated PR loop);
* ``.meta.json`` sidecars for both, recording machine, git state, engine
  generation and the exact capture command.

Deriving the CI file from the same run (rather than a second, shorter
run) keeps the two baselines mutually consistent by construction.

Usage:
    PYTHONPATH=src python benchmarks/tools/record_scale_baselines.py
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
BASELINES = ROOT / "benchmarks" / "baselines"

#: What the recorded engine is, for cross-generation archaeology.
ENGINE_GENERATION = "wave-vectorized bulk engine (shared program rows)"


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _sidecar(artifact: str, report: dict, role: str, notes: str) -> dict:
    return {
        "artifact": artifact,
        "capture_command": (
            "PYTHONPATH=src python benchmarks/tools/record_scale_baselines.py"
        ),
        "capture_cpu_count": os.cpu_count(),
        "created": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "engine_generation": ENGINE_GENERATION,
        "environment": report["environment"],
        "git_sha": _git_sha(),
        "notes": notes,
        "role": role,
        "scenarios": sorted(report["scenarios"]),
        "suite": report["suite"],
    }


def _write(path: Path, doc: dict) -> None:
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def main() -> int:
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = tmp.name
    try:
        subprocess.run(
            [sys.executable, "-m", "repro.bench", "run", "--suite", "scale",
             "-o", tmp_path],
            cwd=ROOT,
            env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
            check=True,
        )
        report = json.loads(Path(tmp_path).read_text())
    finally:
        os.unlink(tmp_path)

    def subset(pred) -> dict:
        doc = {k: v for k, v in report.items() if k != "scenarios"}
        doc["scenarios"] = {
            name: sc for name, sc in report["scenarios"].items() if pred(sc)
        }
        return doc

    full = subset(lambda sc: "data-plane" not in sc["tags"])
    ci = subset(
        lambda sc: "ci-grid" in sc["tags"] and "data-plane" not in sc["tags"]
    )

    _write(BASELINES / "scale.json", full)
    _write(
        BASELINES / "scale.meta.json",
        _sidecar(
            "scale.json",
            full,
            "current implementation (bulk control plane); nightly full-grid gate",
            "Wall clocks are machine-bound (captured single-core); the "
            "--threshold 1.0 compare only trips on 2x+ algorithmic "
            "regressions.  Byte identity across engine generations is "
            "pinned separately by scale_multifile_hashes.json, and the "
            "O(1)-objects-per-rank bound is asserted inside every "
            "paropen-parclose scenario run.",
        ),
    )
    _write(BASELINES / "scale_ci.json", ci)
    _write(
        BASELINES / "scale_ci.meta.json",
        _sidecar(
            "scale_ci.json",
            ci,
            "current implementation (bulk control plane); push-gated CI grid",
            "The ci-grid slice (4k/16k points plus the contention-model "
            "sweep) of the same capture run as scale.json — derived from "
            "one run so the two baselines cannot drift apart.",
        ),
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
