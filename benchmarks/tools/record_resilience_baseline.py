"""(Re)capture the ``resilience`` suite baselines with provenance sidecars.

Runs the registered ``resilience/*`` scenarios of the *current* checkout
and writes two committed baselines, mirroring the role
``record_repartition_baseline.py`` plays for the ``repartition`` suite:

* ``benchmarks/baselines/resilience.json`` — the full suite (the
  4k/16k/64k buddy-restore and torn-close grids); diffed by the nightly
  workflow.
* ``benchmarks/baselines/resilience_ci.json`` — the ``ci-grid`` slice
  (4k/16k) the ``resilience-bench`` CI job gates on every push.

Next to each baseline a ``<name>.meta.json`` provenance sidecar records
the capture command, git SHA, timestamp, environment fingerprint, and
the pre-resilience context: before buddy replicas landed, the only
repair was the shadow rebuild — which cannot restore a *lost* physical
file at all (``recover_multifile`` raises ``SionMetadataLostError``) and
cannot win back unflushed tails.  The sidecar demonstrates that fatal
baseline by measurement, so the 2.0x overhead the scenarios pin is
priced against what the container previously could not survive.

Usage:
    PYTHONPATH=src python benchmarks/tools/record_resilience_baseline.py \
        [-o benchmarks/baselines] [--ci-only]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _capture(suite_tags: tuple[str, ...]):
    from repro.bench.runner import run_suite

    def progress(msg: str) -> None:
        print(msg, flush=True)

    return run_suite(suite="resilience", tags=suite_tags, progress=progress)


def _preresilience_context() -> dict:
    """The whole-file-loss reference before buddy replicas existed.

    A small measurement of the old failure mode: a non-buddy checkpoint
    loses a physical file, and recovery has nothing to rebuild it from.
    """
    from repro.backends.simfs_backend import SimBackend
    from repro.errors import ReproError
    from repro.fs.simfs import SimFS
    from repro.sion import paropen, recover_multifile
    from repro.sion.mapping import physical_path
    from repro.simmpi import run_spmd

    ntasks = 256
    backend = SimBackend(SimFS(blocksize_override=4096))
    path = "/pre.sion"

    def program(comm):
        f = paropen(path, "w", comm, chunksize=4096, nfiles=2, shadow=True,
                    backend=backend)
        f.fwrite(bytes((comm.rank + i) % 256 for i in range(64)))
        f.parclose()

    run_spmd(ntasks, program, engine="bulk")
    backend.unlink(physical_path(path, 1))
    try:
        recover_multifile(path, backend=backend)
        outcome = "unexpectedly recovered"  # would invalidate the pin
    except ReproError as exc:
        outcome = f"{type(exc).__name__}: file loss is fatal without a buddy"
    return {
        "mode": "shadow rebuild only (pre-resilience)",
        "measured_ntasks": ntasks,
        "measured_whole_file_loss": outcome,
        "shadow_rebuild_scope": "metablock-2 loss and torn chunk chains "
        "within a surviving file; unflushed tails are gone",
        "buddy_overhead_closed_form": "replica bytes == primary bytes (2.0x)",
        "buddy_recovered_bytes_closed_form": "(ntasks / nfiles) * payload "
        "for the lost file of a blocked mapping",
    }


def _write_with_sidecar(report, path: Path, context: dict, argv: list[str]) -> None:
    from repro.bench.results import utc_now_iso

    report.save(path)
    sidecar = {
        "artifact": path.name,
        "suite": report.suite,
        "scenarios": sorted(report.scenarios),
        "git_sha": report.git_sha,
        "created": utc_now_iso(),
        "environment": report.environment,
        "capture_command": "PYTHONPATH=src python "
        "benchmarks/tools/record_resilience_baseline.py " + " ".join(argv),
        "pre_resilience_reference": context,
    }
    path.with_suffix(".meta.json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {path} (+ {path.with_suffix('.meta.json').name})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output-dir", default="benchmarks/baselines",
        help="directory receiving resilience.json / resilience_ci.json",
    )
    parser.add_argument(
        "--ci-only", action="store_true",
        help="recapture only the ci-grid slice (resilience_ci.json)",
    )
    args = parser.parse_args(argv)
    argv = argv if argv is not None else sys.argv[1:]

    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    context = _preresilience_context()

    ci_report = _capture(("ci-grid",))
    if ci_report.failed:
        for res in ci_report.failed:
            print(f"FAILED {res.name}:\n{res.error}", file=sys.stderr)
        return 1
    _write_with_sidecar(ci_report, out_dir / "resilience_ci.json", context, argv)

    if not args.ci_only:
        full_report = _capture(())
        if full_report.failed:
            for res in full_report.failed:
                print(f"FAILED {res.name}:\n{res.error}", file=sys.stderr)
            return 1
        _write_with_sidecar(
            full_report, out_dir / "resilience.json", context, argv
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
