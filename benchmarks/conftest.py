"""Benchmark-harness helpers: result emission and shared profiles."""

from __future__ import annotations

import pathlib

import pytest

from repro.fs.systems import jaguar, jugene

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a reproduced table/figure and persist it under results/.

    The saved files are the source material for EXPERIMENTS.md.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")


@pytest.fixture(scope="session")
def jugene_profile():
    return jugene()


@pytest.fixture(scope="session")
def jaguar_profile():
    return jaguar()


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The scenarios are deterministic simulations; repeated rounds only
    re-measure the same arithmetic, so a single round suffices.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
