"""Benchmark-harness helpers: result emission and shared profiles."""

from __future__ import annotations

import functools
import json
import pathlib

import pytest

from repro.bench.results import git_sha, utc_now_iso
from repro.fs.systems import jaguar, jugene

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@functools.lru_cache(maxsize=1)
def _session_git_sha() -> str:
    """One ``git rev-parse`` per session, not one per emitted artifact.

    Anchored to this file's directory: the artifacts describe *this*
    checkout regardless of where pytest was launched from.
    """
    return git_sha(cwd=pathlib.Path(__file__).parent)


def emit(name: str, text: str, scenario: str | None = None) -> None:
    """Print a reproduced table/figure and persist it under results/.

    The saved files are the source material for EXPERIMENTS.md.  Next to
    each ``<name>.txt`` a ``<name>.meta.json`` sidecar stamps the artifact
    name, the registered ``repro.bench`` scenario that produced it (when
    one did — rerun it with ``python -m repro.bench run --filter <scenario>``),
    the git SHA, and an ISO timestamp, so every persisted table carries
    its provenance.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    sidecar = {
        "artifact": name,
        "scenario": scenario,
        "git_sha": _session_git_sha(),
        "created": utc_now_iso(),
    }
    (RESULTS_DIR / f"{name}.meta.json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n"
    )
    print(f"\n=== {name} ===\n{text}")


@pytest.fixture(scope="session")
def jugene_profile():
    return jugene()


@pytest.fixture(scope="session")
def jaguar_profile():
    return jaguar()


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The scenarios are deterministic simulations; repeated rounds only
    re-measure the same arithmetic, so a single round suffices.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
