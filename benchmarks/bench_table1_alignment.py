"""Table 1 — bandwidth with and without file-system block alignment.

Paper: 32K tasks, 256 GB, 16 physical files on Jugene; aligned (2 MB)
5381.8 / 4630.6 MB/s write/read vs unaligned (16 KB) 2125.8 / 2603.0 —
factors of 2.53x and 1.78x.
"""

from repro.workloads.alignment import run_table1

from conftest import emit, once


def test_table1_alignment_jugene(benchmark, jugene_profile):
    res = once(benchmark, run_table1, jugene_profile)
    rows = [
        "#tasks  data      blksize  write MB/s  read MB/s",
        "------  --------  -------  ----------  ---------",
        f"{res.aligned.ntasks:>6}  {res.aligned.data_bytes // 10**9:>5} GB  "
        f"{res.aligned.blksize // 1024:>4} KB  {res.aligned.write_mb_s:>10.1f}  "
        f"{res.aligned.read_mb_s:>9.1f}",
        f"{res.unaligned.ntasks:>6}  {res.unaligned.data_bytes // 10**9:>5} GB  "
        f"{res.unaligned.blksize // 1024:>4} KB  {res.unaligned.write_mb_s:>10.1f}  "
        f"{res.unaligned.read_mb_s:>9.1f}",
        "",
        f"factors: write {res.write_factor:.2f}x (paper 2.53x)   "
        f"read {res.read_factor:.2f}x (paper 1.78x)",
    ]
    emit("table1_alignment", "\n".join(rows))
    assert 2.2 < res.write_factor < 2.9
    assert 1.5 < res.read_factor < 2.1
