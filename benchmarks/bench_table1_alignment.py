"""Table 1 — bandwidth with and without file-system block alignment.

Paper: 32K tasks, 256 GB, 16 physical files on Jugene; aligned (2 MB)
5381.8 / 4630.6 MB/s write/read vs unaligned (16 KB) 2125.8 / 2603.0 —
factors of 2.53x and 1.78x.

Thin wrapper over the registered ``table1/alignment`` scenario.
"""

from repro.bench import get_scenario

from conftest import emit, once


def test_table1_alignment_jugene(benchmark):
    sc = get_scenario("table1/alignment")
    out = once(benchmark, sc.execute)
    emit("table1_alignment", out.text, scenario=sc.name)
    res = out.raw
    assert 2.2 < res.write_factor < 2.9
    assert 1.5 < res.read_factor < 2.1
