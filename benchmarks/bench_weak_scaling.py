"""Weak scaling — the production regime behind Fig. 6 and §5.2.

Grows the MP2C problem with the machine (fixed particles per task) and
prices the analyzer's trace-load pass, complementing the paper's
fixed-core Fig. 6 and fixed-size Table 2.

Thin wrapper over the registered ``weak-scaling/*`` scenarios.
"""

from repro.bench import get_scenario

from conftest import emit, once


def test_mp2c_weak_scaling(benchmark):
    sc = get_scenario("weak-scaling/mp2c")
    out = once(benchmark, sc.execute)
    emit("weak_scaling_mp2c", out.text, scenario=sc.name)
    speedups = [p.speedup for p in out.raw]
    # The baseline degrades with total data; SION is bounded by the FS.
    assert speedups == sorted(speedups)
    assert speedups[-1] > 100


def test_analyzer_trace_load(benchmark):
    sc = get_scenario("weak-scaling/analyzer-load")
    out = once(benchmark, sc.execute)
    emit("analyzer_trace_load", out.text, scenario=sc.name)
    assert all(p.sion_open_s < p.tasklocal_open_s for p in out.raw)
