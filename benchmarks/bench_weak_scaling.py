"""Weak scaling — the production regime behind Fig. 6 and §5.2.

Grows the MP2C problem with the machine (fixed particles per task) and
prices the analyzer's trace-load pass, complementing the paper's
fixed-core Fig. 6 and fixed-size Table 2.
"""

from repro.analysis.results import Series, format_table, human_count
from repro.workloads.scaling import analyzer_load_times, mp2c_weak_scaling

from conftest import emit, once

TASK_COUNTS = [1024, 4096, 16384, 65536]


def test_mp2c_weak_scaling(benchmark, jugene_profile):
    pts = once(benchmark, mp2c_weak_scaling, jugene_profile, TASK_COUNTS)
    s = Series("weak-scaling", "#tasks", "seconds", xs=[p.ntasks for p in pts])
    s.add_curve("SION write", [p.sion_write_s for p in pts])
    s.add_curve("single-file write", [p.single_write_s for p in pts])
    s.add_curve("speedup", [p.speedup for p in pts])
    emit("weak_scaling_mp2c", format_table(s))
    speedups = [p.speedup for p in pts]
    # The baseline degrades with total data; SION is bounded by the FS.
    assert speedups == sorted(speedups)
    assert speedups[-1] > 100


def test_analyzer_trace_load(benchmark, jugene_profile):
    pts = once(benchmark, analyzer_load_times, jugene_profile, TASK_COUNTS)
    s = Series("analyzer-load", "#tasks", "seconds", xs=[p.ntasks for p in pts])
    s.add_curve("task-local open", [p.tasklocal_open_s for p in pts])
    s.add_curve("SION open", [p.sion_open_s for p in pts])
    text = format_table(s) + "\n\nspeedup: " + "  ".join(
        f"{human_count(p.ntasks)}:{p.speedup:.0f}x" for p in pts
    )
    emit("analyzer_trace_load", text)
    assert all(p.sion_open_s < p.tasklocal_open_s for p in pts)
