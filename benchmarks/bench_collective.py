"""collective: collector-rank aggregation, as benchmarks.

Thin pytest wrappers over the registered ``collective/*`` scenarios plus
the qualitative claims behind ISSUE 4's acceptance criteria:

* physical backend write calls scale with the number of **collectors**,
  not the number of tasks — the scenarios pin the exact closed form
  ``ncollectors + 3 * nfiles`` internally, and the 4k equivalence point
  shows the direct-mode counts growing with the task count while the
  collective counts stay flat;
* collective-mode multifiles are **byte-identical** to direct mode (the
  equivalence scenario compares every physical file's bytes and raises
  on any difference);
* the nfiles x collectors tradeoff sweep (the paper's Fig. 4 methodology
  on the new axis) covers the full grid without a failure.

The 64k grid points run through ``python -m repro.bench run --suite
collective``; pytest keeps to the points that finish in seconds.
"""

from conftest import emit


def _run(name):
    from repro.bench import get_scenario

    sc = get_scenario(name)
    out = sc.execute()
    emit(name.replace("/", "_").replace("-", "_").replace("[", ".").replace("]", ""),
         out.text, scenario=name)
    return out


def test_write_wave_calls_scale_with_collectors():
    out = _run("collective/write-wave[ntasks=4096]")
    # 64 collectors + 3 metadata writes; the scenario raises if the
    # measured counts drift from the closed form, so reaching here *is*
    # the O(ncollectors) proof.  Re-state the headline number as an
    # assertion on the recorded metric for good measure.
    assert out.metrics["data_write_calls"].value == 64 + 3
    assert out.metrics["wave_write_calls"].value == 64


def test_read_wave_calls_scale_with_collectors():
    out = _run("collective/read-wave[ntasks=4096]")
    assert out.metrics["wave_read_calls"].value == 64
    # One prefetch gather_read per collector + fixed metadata reads.
    assert out.metrics["data_read_calls"].value == 64 + 12


def test_collective_files_byte_identical_to_direct():
    out = _run("collective/direct-vs-collective[ntasks=4096]")
    # The scenario has already byte-compared every physical file; the
    # metrics record the call collapse (>= 58x fewer physical writes at
    # 4096 tasks / 64 collectors; both modes' counts are exact now that
    # direct-mode handles are replay-guarded).
    assert out.metrics["collective_write_calls"].value == 64 + 3 * 2
    reduction = out.metrics["write_call_reduction"].value
    assert reduction >= 4096 / (64 + 3 * 2)


def test_nfiles_collectors_tradeoff_sweeps_clean():
    out = _run("collective/nfiles-collectors-tradeoff[ntasks=4096]")
    # Pressure per physical file falls as files are added at a fixed
    # collector count — the knob balance the paper's Fig. 4 studies.
    per_file_1 = out.metrics["calls_per_file[nfiles=1,collectors=64]"].value
    per_file_4 = out.metrics["calls_per_file[nfiles=4,collectors=64]"].value
    assert per_file_4 < per_file_1
    # And total calls track the collector count, not the file count.
    assert out.metrics["write_calls[nfiles=1,collectors=16]"].value == 16 + 3
    assert out.metrics["write_calls[nfiles=1,collectors=256]"].value == 256 + 3
