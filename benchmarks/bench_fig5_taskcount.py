"""Fig. 5 — SION vs. task-local-file bandwidth over task counts.

Paper: both approaches saturate Jugene's ~6 GB/s at >= 8K tasks with SION
marginally ahead; on Jaguar SION's write bandwidth is better in most cases
and reads exceed the nominal 40 GB/s at scale (client caching).

Thin wrapper over the registered ``fig5/*`` scenarios.
"""

from repro.bench import get_scenario

from conftest import emit, once


def test_fig5a_jugene(benchmark):
    sc = get_scenario("fig5/taskbw-jugene")
    out = once(benchmark, sc.execute)
    emit("fig5a_jugene", out.text, scenario=sc.name)
    assert all(p.sion_write >= p.tasklocal_write - 1e-6 for p in out.raw)


def test_fig5b_jaguar(benchmark, jaguar_profile):
    sc = get_scenario("fig5/taskbw-jaguar")
    out = once(benchmark, sc.execute)
    emit("fig5b_jaguar", out.text, scenario=sc.name)
    assert out.raw[-1].sion_read > jaguar_profile.nominal_peak_bw
