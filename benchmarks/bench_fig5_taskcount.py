"""Fig. 5 — SION vs. task-local-file bandwidth over task counts.

Paper: both approaches saturate Jugene's ~6 GB/s at >= 8K tasks with SION
marginally ahead; on Jaguar SION's write bandwidth is better in most cases
and reads exceed the nominal 40 GB/s at scale (client caching).
"""

from repro.analysis.plots import ascii_chart
from repro.analysis.results import Series, format_table
from repro.workloads.taskbw import run_fig5a, run_fig5b

from conftest import emit, once


def _series(name, pts):
    s = Series(name, "#tasks", "MB/s", xs=[p.ntasks for p in pts])
    s.add_curve("SION write", [p.sion_write for p in pts])
    s.add_curve("SION read", [p.sion_read for p in pts])
    s.add_curve("task-local write", [p.tasklocal_write for p in pts])
    s.add_curve("task-local read", [p.tasklocal_read for p in pts])
    return s


def test_fig5a_jugene(benchmark, jugene_profile):
    pts = once(benchmark, run_fig5a, jugene_profile)
    s = _series("fig5a", pts)
    emit("fig5a_jugene", format_table(s) + "\n\n" + ascii_chart(s, log_x=True))
    assert all(p.sion_write >= p.tasklocal_write - 1e-6 for p in pts)


def test_fig5b_jaguar(benchmark, jaguar_profile):
    pts = once(benchmark, run_fig5b, jaguar_profile)
    s = _series("fig5b", pts)
    emit("fig5b_jaguar", format_table(s) + "\n\n" + ascii_chart(s, log_x=True))
    assert pts[-1].sion_read > jaguar_profile.nominal_peak_bw
