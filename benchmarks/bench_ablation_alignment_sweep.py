"""Ablation — how the false-sharing penalty grows as the configured block
size shrinks below the true 2 MB GPFS block.

Extends Table 1 from two points to a sweep, exposing the saturating shape
of the lock-contention model (penalty -> 1 + c as sharers -> inf).

Thin wrapper over the registered ``ablation/alignment-sweep`` scenario.
"""

from repro.bench import get_scenario

from conftest import emit, once


def test_ablation_alignment_sweep(benchmark):
    sc = get_scenario("ablation/alignment-sweep")
    out = once(benchmark, sc.execute)
    emit("ablation_alignment_sweep", out.text, scenario=sc.name)
    rows = out.raw
    base_w = rows[0].write_mb_s
    penalties = [base_w / r.write_mb_s for r in rows]
    assert penalties == sorted(penalties)  # monotone as alignment degrades
    assert penalties[-1] < 2.6  # saturates near 1 + write_coeff
