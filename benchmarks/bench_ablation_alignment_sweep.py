"""Ablation — how the false-sharing penalty grows as the configured block
size shrinks below the true 2 MB GPFS block.

Extends Table 1 from two points to a sweep, exposing the saturating shape
of the lock-contention model (penalty -> 1 + c as sharers -> inf).
"""

from repro.analysis.results import Series, format_table
from repro.workloads.alignment import alignment_sweep

from conftest import emit, once

KiB = 1024
SWEEP = [2048 * KiB, 1024 * KiB, 512 * KiB, 128 * KiB, 64 * KiB, 16 * KiB, 4 * KiB]


def test_ablation_alignment_sweep(benchmark, jugene_profile):
    rows = once(benchmark, alignment_sweep, jugene_profile, SWEEP)
    s = Series("alignment-sweep", "blk KiB", "MB/s", xs=[r.blksize // KiB for r in rows])
    s.add_curve("write", [r.write_mb_s for r in rows])
    s.add_curve("read", [r.read_mb_s for r in rows])
    base_w = rows[0].write_mb_s
    s.add_curve("write penalty", [base_w / r.write_mb_s for r in rows])
    emit("ablation_alignment_sweep", format_table(s))
    penalties = [base_w / r.write_mb_s for r in rows]
    assert penalties == sorted(penalties)  # monotone as alignment degrades
    assert penalties[-1] < 2.6  # saturates near 1 + write_coeff
