"""Extrapolation — the paper's scaling argument carried to exascale counts.

§4.1: "Extrapolating the above-mentioned numbers to larger systems clearly
demonstrates the scalability limits of using multiple task-local files in
parallel — even if the files already exist."  The analytic model (cross-
validated against the simulator in the test suite) prices task counts the
2009 testbeds couldn't reach.

Thin wrapper over the grid-registered ``extrapolation/create[system=*]``
scenarios.
"""

from repro.analysis.results import human_count
from repro.bench import get_scenario

from conftest import emit, once


def test_extrapolation_to_million_tasks(benchmark):
    sc = get_scenario("extrapolation/create[system=jugene]")
    out = once(benchmark, sc.execute)
    emit("extrapolation_million_tasks", out.text, scenario=sc.name)
    rows = out.raw
    assert rows[-1][1] > 3600  # an hour-plus of pure creates at 1M tasks
    assert rows[-1][3] < 60


def test_extrapolation_speedup_grows(benchmark):
    sc = get_scenario("extrapolation/create[system=jaguar]")
    out = once(benchmark, sc.execute)
    rows = out.raw
    speedups = [c / s for _, c, _, s in rows]
    emit(
        "extrapolation_jaguar_speedups",
        "create/SION speedup by task count:\n"
        + "  ".join(
            f"{human_count(n)}:{sp:.0f}x" for (n, _, _, _), sp in zip(rows, speedups)
        ),
        scenario=sc.name,
    )
    assert all(b >= a * 0.9 for a, b in zip(speedups, speedups[1:]))
