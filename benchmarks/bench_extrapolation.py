"""Extrapolation — the paper's scaling argument carried to exascale counts.

§4.1: "Extrapolating the above-mentioned numbers to larger systems clearly
demonstrates the scalability limits of using multiple task-local files in
parallel — even if the files already exist."  The analytic model (cross-
validated against the simulator in the test suite) prices task counts the
2009 testbeds couldn't reach.
"""

from repro.analysis.model import (
    predict_create_time,
    predict_sion_create_time,
)
from repro.analysis.results import Series, format_table, human_count

from conftest import emit, once

TASK_COUNTS = [65536, 131072, 262144, 524288, 1048576]


def _sweep(profile):
    rows = []
    for n in TASK_COUNTS:
        rows.append(
            (
                n,
                predict_create_time(profile, n, "create"),
                predict_create_time(profile, n, "open"),
                predict_sion_create_time(profile, n, 32),
            )
        )
    return rows


def test_extrapolation_to_million_tasks(benchmark, jugene_profile):
    rows = once(benchmark, _sweep, jugene_profile)
    s = Series("extrapolation", "#tasks", "seconds", xs=[r[0] for r in rows])
    s.add_curve("create files", [r[1] for r in rows])
    s.add_curve("open existing", [r[2] for r in rows])
    s.add_curve("SION create (32 files)", [r[3] for r in rows])
    table = format_table(s)
    per_m = {n: c for n, c, _, _ in rows}
    table += (
        f"\n\nat 1M tasks: {per_m[1048576] / 60:.0f} minutes just to create the "
        f"task-local files — even *opening* existing ones costs "
        f"{rows[-1][2] / 60:.0f} minutes per run; the SION multifile stays at "
        f"{rows[-1][3]:.0f} s"
    )
    emit("extrapolation_million_tasks", table)
    assert rows[-1][1] > 3600  # an hour-plus of pure creates at 1M tasks
    assert rows[-1][3] < 60


def test_extrapolation_speedup_grows(benchmark, jaguar_profile):
    rows = once(benchmark, _sweep, jaguar_profile)
    speedups = [c / s for _, c, _, s in rows]
    emit(
        "extrapolation_jaguar_speedups",
        "create/SION speedup by task count:\n"
        + "  ".join(
            f"{human_count(n)}:{sp:.0f}x" for (n, _, _, _), sp in zip(rows, speedups)
        ),
    )
    assert all(b >= a * 0.9 for a, b in zip(speedups, speedups[1:]))
