"""repartition: m readers over an n-writer multifile, as benchmarks.

Thin pytest wrappers over the registered ``repartition/*`` scenarios
plus the qualitative claims behind ISSUE 5's acceptance criteria:

* a multifile written by n bulk-engine tasks is read back
  **byte-identically** by a reader world of a different size (every
  scenario verifies the bytes inside each reader rank and raises on any
  divergence — reaching the metrics *is* the proof);
* physical read calls scale with the number of **readers**: the
  scenarios pin the closed form ``m + 8·nfiles + 4`` (direct) and
  ``ceil(m/collectsize) + 8·nfiles + 4`` (collective prefetch) from
  first principles;
* the modelled restart/analysis cycle prices the m-axis on a machine
  profile (deterministic simulated seconds).

The 64k x 32 acceptance point runs through ``python -m repro.bench run
--suite repartition``; pytest keeps to the points that finish in
seconds.
"""

from conftest import emit


def _run(name):
    from repro.bench import get_scenario

    sc = get_scenario(name)
    out = sc.execute()
    emit(name.replace("/", "_").replace("-", "_").replace("[", ".").replace("]", ""),
         out.text, scenario=name)
    return out


def test_read_calls_scale_with_readers_not_writers():
    out = _run("repartition/read[nwriters=4096]")
    # 32 readers + probe (4) + one mb1/mb2 decode (8): the scenario
    # raises if the measured counts drift from the closed form, so
    # reaching here is the O(m) proof over 4096 recorded streams.
    assert out.metrics["data_read_calls"].value == 32 + 12
    assert out.metrics["streams_per_reader"].value == 4096 / 32


def test_reader_sweep_pins_every_point():
    out = _run("repartition/reader-sweep[nwriters=4096]")
    for m in (8, 32, 256):
        assert out.metrics[f"read_calls[readers={m}]"].value == m + 12


def test_prefetch_calls_scale_with_collector_groups():
    out = _run("repartition/prefetch[nwriters=4096]")
    # 256 readers through collectsize-8 groups: 32 prefetch waves.
    assert out.metrics["collector_groups"].value == 32
    assert out.metrics["data_read_calls"].value == 32 + 12


def test_restart_analysis_model_orders_reader_counts():
    out = _run("repartition/restart-analysis-model[system=jugene]")
    # Shrinking the analysis world sheds aggregate client bandwidth, so
    # the read can only slow down as m drops.
    t256 = out.metrics["read_time_s[readers=256]"].value
    t4096 = out.metrics["read_time_s[readers=4096]"].value
    t64k = out.metrics["read_time_s[readers=65536]"].value
    assert t256 >= t4096 >= t64k > 0
