"""serve: the read gateway under concurrent session load, as benchmarks.

Thin pytest wrappers over the registered ``serve/*`` scenarios plus the
qualitative claims behind ISSUE 6's acceptance criteria:

* the gateway sustains >= 1000 **truly concurrent** sessions over a
  4096-writer multifile (all sessions open before any reads; the
  scenario pins ``sessions_peak`` and byte-verifies every slice —
  reaching the metrics *is* the proof);
* a warm-cache rerun is served from the shared LRU chunk cache alone:
  pinned at zero backend data-read calls, hit-rate > 0.9, and at least
  the logical byte volume served from cache;
* open/read latency percentiles (p50/p99) and throughput are recorded
  for the committed baselines the ``serve-bench`` CI gate diffs.

The full concurrency sweep (to 4096 sessions) runs nightly through
``python -m repro.bench run --suite serve``; pytest keeps to the points
that finish in seconds.
"""

from conftest import emit


def _run(name):
    from repro.bench import get_scenario

    sc = get_scenario(name)
    out = sc.execute()
    emit(name.replace("/", "_").replace("-", "_").replace("[", ".").replace("]", ""),
         out.text, scenario=name)
    return out


def test_acceptance_point_serves_1024_concurrent_sessions():
    out = _run("serve/load[sessions=1024]")
    # In-scenario pins already proved: 1024 concurrent sessions at peak,
    # every slice byte-identical to the serial view, warm pass with zero
    # backend data reads.  Assert the recorded facts the baseline gates.
    assert out.metrics["warm_hit_rate"].value > 0.9
    assert out.metrics["cache_bytes_served"].value >= 4096 * 64
    assert out.metrics["open_p99_ms"].value >= out.metrics["open_p50_ms"].value
    assert out.metrics["read_p99_ms"].value >= out.metrics["read_p50_ms"].value


def test_cold_pass_reads_scale_with_cache_blocks_not_sessions():
    out = _run("serve/load[sessions=256]")
    # The 16 MiB chunk region behind 64 KiB cache blocks: the cold pass
    # costs a few hundred vectored backend reads regardless of the
    # session count (sessions share the one cache), never O(sessions
    # * streams).
    assert out.metrics["data_read_calls"].value < 1024
    assert out.metrics["warm_hit_rate"].value > 0.9


def test_mixed_op_traffic_shares_the_cache():
    out = _run("serve/mix[sessions=256]")
    # 256 clients x (session + read_task + read_range) over overlapping
    # streams: the shared cache absorbs the re-reads.
    assert out.metrics["hit_rate"].value > 0.5
    assert out.metrics["ops_per_s"].value > 0
