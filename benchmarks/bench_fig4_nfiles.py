"""Fig. 4 — bandwidth when using multiple physical files.

Paper reference points: Jugene saturates its ~6 GB/s scratch FS between 8
and 32 files with a mild decline at 128; on Jaguar the default striping
rises steadily while the optimized (64 OSTs, 8 MB) configuration delivers
good performance from two files and is always superior.
"""

from repro.analysis.results import Series, format_table
from repro.workloads.bandwidth import run_fig4a, run_fig4b

from conftest import emit, once


def test_fig4a_jugene(benchmark, jugene_profile):
    pts = once(benchmark, run_fig4a, jugene_profile)
    series = Series("fig4a", "#files", "MB/s", xs=[p.nfiles for p in pts])
    series.add_curve("write", [p.write_mb_s for p in pts])
    series.add_curve("read", [p.read_mb_s for p in pts])
    emit("fig4a_jugene", format_table(series))
    by_n = {p.nfiles: p for p in pts}
    assert by_n[16].write_mb_s > by_n[1].write_mb_s * 2
    assert by_n[128].write_mb_s < by_n[16].write_mb_s


def test_fig4b_jaguar(benchmark, jaguar_profile):
    res = once(benchmark, run_fig4b, jaguar_profile)
    series = Series("fig4b", "#files", "MB/s", xs=[p.nfiles for p in res.default])
    series.add_curve("write (default)", [p.write_mb_s for p in res.default])
    series.add_curve("read (default)", [p.read_mb_s for p in res.default])
    series.add_curve("write (optimized)", [p.write_mb_s for p in res.optimized])
    series.add_curve("read (optimized)", [p.read_mb_s for p in res.optimized])
    emit("fig4b_jaguar", format_table(series))
    for d, o in zip(res.default, res.optimized):
        assert o.write_mb_s >= d.write_mb_s - 1e-6
