"""Fig. 4 — bandwidth when using multiple physical files.

Paper reference points: Jugene saturates its ~6 GB/s scratch FS between 8
and 32 files with a mild decline at 128; on Jaguar the default striping
rises steadily while the optimized (64 OSTs, 8 MB) configuration delivers
good performance from two files and is always superior.

Thin wrapper over the registered ``fig4/*`` scenarios — run them outside
pytest with ``python -m repro.bench run --filter 'fig4/*'``.
"""

from repro.bench import get_scenario

from conftest import emit, once


def test_fig4a_jugene(benchmark):
    sc = get_scenario("fig4/nfiles-jugene")
    out = once(benchmark, sc.execute)
    emit("fig4a_jugene", out.text, scenario=sc.name)
    by_n = {p.nfiles: p for p in out.raw}
    assert by_n[16].write_mb_s > by_n[1].write_mb_s * 2
    assert by_n[128].write_mb_s < by_n[16].write_mb_s


def test_fig4b_jaguar(benchmark):
    sc = get_scenario("fig4/nfiles-jaguar")
    out = once(benchmark, sc.execute)
    emit("fig4b_jaguar", out.text, scenario=sc.name)
    res = out.raw
    for d, o in zip(res.default, res.optimized):
        assert o.write_mb_s >= d.write_mb_s - 1e-6
